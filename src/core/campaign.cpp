#include "core/campaign.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <fstream>
#include <mutex>
#include <sstream>
#include <stdexcept>
#include <thread>
#include <utility>

#include "core/bist.hpp"
#include "core/checkpoint.hpp"
#include "core/session.hpp"

namespace jsi::core {

namespace {

/// Shared prologue of every single-bus canned builder: derive the
/// config's effective electrical parameters, seed the unit's bus from
/// the campaign prototype (clone when the width matches, fresh
/// otherwise), and apply the unit's defect injections.
si::CoupledBus unit_bus(CampaignContext& ctx, const SocConfig& c,
                        const CampaignRunner::BusSetup& defects) {
  si::CoupledBus bus = ctx.make_bus(effective_bus_params(c));
  // Tag which interconnect kernel serves this unit so merged BENCH /
  // metrics JSONs distinguish model populations. Only booked for
  // non-default models: rc_full_swing artifacts stay byte-exact.
  if (c.bus.model != si::ModelKind::RcFullSwing) {
    ctx.hub().registry()
        .counter(std::string("bus.model.") + si::model_kind_name(c.bus.model))
        .inc();
  }
  if (defects) defects(bus);
  return bus;
}

/// Shared tail of every canned builder: fold a session report into the
/// outcome fields the merged campaign report is built from.
UnitOutcome summarize(const IntegrityReport& rep) {
  UnitOutcome o;
  o.total_tcks = rep.total_tcks;
  o.generation_tcks = rep.generation_tcks;
  o.observation_tcks = rep.observation_tcks;
  o.violation = rep.any_violation();
  std::ostringstream os;
  os << "nd=" << rep.nd_final.to_string() << " sd=" << rep.sd_final.to_string();
  o.summary = os.str();
  return o;
}

}  // namespace

std::string CampaignResult::to_text() const {
  std::ostringstream os;
  if (aggregated) {
    // Aggregate campaigns fold outcomes as they stream; the canonical
    // report keeps the totals plus one line per retained failure (each
    // still addressed by its stable work-unit index). Deterministic for
    // the same reason the per-unit form is: everything printed is a
    // chunk-ordered fold of per-unit facts.
    os << "campaign: " << units_run << " units (aggregated), " << violations
       << " violations, " << failures << " failures\n";
    os << "tcks: total=" << total_tcks << " generation=" << generation_tcks
       << " observation=" << observation_tcks << "\n";
    for (const UnitOutcome& u : failed) {
      os << "[" << u.index << "] " << u.name << ": FAIL " << u.summary
         << " tcks=" << u.total_tcks << " (gen=" << u.generation_tcks
         << " obs=" << u.observation_tcks << ")\n";
    }
    return os.str();
  }
  os << "campaign: " << units.size() << " units, " << violations
     << " violations, " << failures << " failures\n";
  os << "tcks: total=" << total_tcks << " generation=" << generation_tcks
     << " observation=" << observation_tcks << "\n";
  for (std::size_t i = 0; i < units.size(); ++i) {
    const UnitOutcome& u = units[i];
    os << "[" << i << "] " << u.name << ": "
       << (u.failed ? "FAIL" : (u.violation ? "violation" : "clean")) << " "
       << u.summary << " tcks=" << u.total_tcks
       << " (gen=" << u.generation_tcks << " obs=" << u.observation_tcks
       << ")\n";
  }
  return os.str();
}

CampaignRunner::CampaignRunner(CampaignConfig cfg) : cfg_(std::move(cfg)) {}

void CampaignRunner::set_prototype_bus(const si::CoupledBus* prototype) {
  prototype_ = prototype;
}

void CampaignRunner::set_live_sink(obs::Sink* sink) { live_sink_ = sink; }

void CampaignRunner::add(CampaignUnit unit) {
  units_.push_back(std::move(unit));
}

void CampaignRunner::set_source(const UnitSource* source) { source_ = source; }

std::size_t CampaignRunner::effective_chunk_size() const {
  if (cfg_.chunk_size != 0) return cfg_.chunk_size;
  // Auto rule: per-unit chunks when outcomes are retained (the historic
  // merge grouping, byte-exact with pre-chunking releases), 64 units per
  // claim in aggregate mode. Depends only on the config — never on the
  // shard count — because the chunk layout determines the FP summation
  // grouping of the merged registry.
  return cfg_.aggregate_outcomes ? 64 : 1;
}

void CampaignRunner::add_enhanced(std::string name, SocConfig cfg,
                                  ObservationMethod method, BusSetup defects) {
  CampaignUnit u;
  u.name = std::move(name);
  u.run = [cfg = std::move(cfg), method,
           defects = std::move(defects)](CampaignContext& ctx) {
    SocConfig c = cfg;
    c.enhanced = true;
    si::CoupledBus bus = unit_bus(ctx, c, defects);
    SiSocDevice soc(c, bus);
    SiTestSession session(soc);
    session.set_sink(&ctx.hub());
    return summarize(session.run(method));
  };
  add(std::move(u));
}

void CampaignRunner::add_parallel(std::string name, SocConfig cfg,
                                  ObservationMethod method, std::size_t guard,
                                  BusSetup defects) {
  CampaignUnit u;
  u.name = std::move(name);
  u.run = [cfg = std::move(cfg), method, guard,
           defects = std::move(defects)](CampaignContext& ctx) {
    SocConfig c = cfg;
    c.enhanced = true;
    si::CoupledBus bus = unit_bus(ctx, c, defects);
    SiSocDevice soc(c, bus);
    SiTestSession session(soc);
    session.set_sink(&ctx.hub());
    return summarize(session.run_parallel(method, guard));
  };
  add(std::move(u));
}

void CampaignRunner::add_conventional(std::string name, SocConfig cfg,
                                      ObservationMethod method,
                                      BusSetup defects) {
  CampaignUnit u;
  u.name = std::move(name);
  u.run = [cfg = std::move(cfg), method,
           defects = std::move(defects)](CampaignContext& ctx) {
    SocConfig c = cfg;
    c.enhanced = false;
    si::CoupledBus bus = unit_bus(ctx, c, defects);
    SiSocDevice soc(c, bus);
    ConventionalSession session(soc);
    session.set_sink(&ctx.hub());
    return summarize(session.run(method));
  };
  add(std::move(u));
}

void CampaignRunner::add_multibus(std::string name, MultiBusConfig cfg,
                                  ObservationMethod method,
                                  MultiBusSetup defects) {
  CampaignUnit u;
  u.name = std::move(name);
  u.run = [cfg = std::move(cfg), method,
           defects = std::move(defects)](CampaignContext& ctx) {
    MultiBusConfig c = cfg;
    si::CoupledBus proto = ctx.make_bus(effective_bus_params(c));
    if (c.bus.model != si::ModelKind::RcFullSwing) {
      ctx.hub().registry()
          .counter(std::string("bus.model.") +
                   si::model_kind_name(c.bus.model))
          .inc();
    }
    MultiBusSoc soc(c, proto);
    if (defects) {
      for (std::size_t b = 0; b < soc.n_buses(); ++b) defects(b, soc.bus(b));
    }
    MultiBusSession session(soc);
    session.set_sink(&ctx.hub());
    MultiBusReport rep = session.run(method);

    UnitOutcome o;
    o.total_tcks = rep.total_tcks;
    o.generation_tcks = rep.generation_tcks;
    o.observation_tcks = rep.observation_tcks;
    o.violation = rep.any_violation();
    std::ostringstream os;
    for (std::size_t b = 0; b < rep.buses.size(); ++b) {
      if (b) os << " ";
      os << "b" << b << "[nd=" << rep.buses[b].nd_final.to_string()
         << " sd=" << rep.buses[b].sd_final.to_string() << "]";
    }
    o.summary = os.str();
    return o;
  };
  add(std::move(u));
}

void CampaignRunner::add_bist(std::string name, SocConfig cfg,
                              BusSetup defects) {
  CampaignUnit u;
  u.name = std::move(name);
  u.run = [cfg = std::move(cfg),
           defects = std::move(defects)](CampaignContext& ctx) {
    SocConfig c = cfg;
    c.enhanced = true;
    si::CoupledBus bus = unit_bus(ctx, c, defects);
    SiSocDevice soc(c, bus);
    SiBistController ctl(soc);
    ctl.set_sink(&ctx.hub());
    SiBistController::Result res = ctl.run();

    UnitOutcome o;
    o.total_tcks = res.tcks;
    // The autonomous controller runs one fused program; it does not split
    // its budget into generation/observation phases.
    o.violation = !res.pass;
    std::ostringstream os;
    os << (res.pass ? "pass" : "fail") << " nd=" << res.nd.to_string()
       << " sd=" << res.sd.to_string();
    o.summary = os.str();
    return o;
  };
  add(std::move(u));
}

CampaignResult CampaignRunner::run() {
  if (source_ != nullptr && !units_.empty()) {
    throw std::invalid_argument(
        "campaign: set_source and add are mutually exclusive");
  }
  if (cfg_.keep_events && cfg_.aggregate_outcomes) {
    throw std::invalid_argument(
        "campaign: keep_events is incompatible with aggregate_outcomes");
  }
  if (cfg_.keep_events && !cfg_.checkpoint_path.empty()) {
    throw std::invalid_argument(
        "campaign: keep_events is incompatible with checkpointing");
  }
  if (cfg_.resume && cfg_.checkpoint_path.empty()) {
    throw std::invalid_argument("campaign: resume needs a checkpoint_path");
  }

  const std::size_t n = size();
  const std::size_t chunk_size = effective_chunk_size();
  const std::size_t n_chunks = (n + chunk_size - 1) / chunk_size;

  std::size_t range_end = cfg_.range_end == 0 ? n : cfg_.range_end;
  if (cfg_.range_begin > range_end || range_end > n) {
    throw std::invalid_argument("campaign: work-unit range out of bounds");
  }
  if (cfg_.range_begin % chunk_size != 0 ||
      (range_end % chunk_size != 0 && range_end != n)) {
    throw std::invalid_argument(
        "campaign: work-unit range must fall on chunk boundaries");
  }
  const std::size_t begin_chunk = cfg_.range_begin / chunk_size;
  const std::size_t end_chunk = (range_end + chunk_size - 1) / chunk_size;

  // One slot per chunk. A chunk is either pre-filled from a loaded
  // checkpoint or produced by exactly one worker; the streaming fold
  // below consumes slots strictly in chunk order.
  std::vector<std::optional<ChunkRecord>> records(n_chunks);
  std::vector<char> loaded(n_chunks, 0);

  CheckpointWriter ckpt;
  if (!cfg_.checkpoint_path.empty()) {
    CheckpointHeader header;
    header.fingerprint = cfg_.fingerprint;
    header.units = n;
    header.chunk_size = chunk_size;
    header.aggregate = cfg_.aggregate_outcomes;

    bool resuming = false;
    if (cfg_.resume && std::ifstream(cfg_.checkpoint_path).good()) {
      CheckpointData data = load_checkpoint(cfg_.checkpoint_path);
      if (data.header.fingerprint != header.fingerprint) {
        throw CheckpointMismatchError(
            "campaign: checkpoint fingerprint mismatch (the checkpoint was "
            "written for a different campaign)");
      }
      if (data.header.units != header.units ||
          data.header.chunk_size != header.chunk_size ||
          data.header.aggregate != header.aggregate) {
        throw CheckpointMismatchError(
            "campaign: checkpoint layout mismatch (units/chunk_size/aggregate "
            "differ from this campaign's configuration)");
      }
      for (ChunkRecord& rec : data.records) {
        if (rec.chunk >= n_chunks) {
          throw std::runtime_error(
              "campaign: checkpoint chunk id out of range");
        }
        loaded[rec.chunk] = 1;
        records[rec.chunk] = std::move(rec);
      }
      resuming = true;
    }
    ckpt.open(cfg_.checkpoint_path, header, resuming);
  }

  // Work remaining this call: non-loaded chunks inside the range.
  std::size_t runnable_chunks = 0;
  std::size_t runnable_units = 0;
  for (std::size_t c = begin_chunk; c < end_chunk; ++c) {
    if (loaded[c]) continue;
    ++runnable_chunks;
    runnable_units += std::min(n, (c + 1) * chunk_size) - c * chunk_size;
  }

  std::size_t shards = cfg_.shards;
  if (shards == 0) {
    shards = std::thread::hardware_concurrency();
    if (shards == 0) shards = 1;
  }
  if (shards > runnable_chunks) shards = runnable_chunks;
  if (shards == 0) shards = 1;

  std::atomic<std::size_t> next_chunk{begin_chunk};
  std::atomic<std::size_t> fresh_claimed{0};

  // The streaming fold. Chunk records merge into the result in strict
  // chunk order the moment the frontier chunk completes, then free —
  // memory stays bounded by chunks in flight, not campaign size. Chunk
  // order == work-unit order, so the merged registry's FP summation
  // grouping is a pure function of (n, chunk_size) and the outcome list
  // lands in work-unit order: byte-identity across shard counts, worker
  // processes, and resume follows.
  CampaignResult r;
  r.aggregated = cfg_.aggregate_outcomes;
  std::mutex publish_mu;
  // A range-restricted call folds only its own chunks (chunks outside
  // the range belong to other worker processes); the result is then
  // marked incomplete below, whatever the fold reached.
  std::size_t frontier = begin_chunk;
  auto drain = [&]() {  // publish_mu must be held (or workers joined)
    while (frontier < end_chunk && records[frontier].has_value()) {
      ChunkRecord& rec = *records[frontier];
      r.metrics.merge(rec.registry);
      r.units_run += rec.agg.units;
      r.total_tcks += rec.agg.total_tcks;
      r.generation_tcks += rec.agg.generation_tcks;
      r.observation_tcks += rec.agg.observation_tcks;
      r.violations += static_cast<std::size_t>(rec.agg.violations);
      r.failures += static_cast<std::size_t>(rec.agg.failures);
      std::vector<UnitOutcome>& dst =
          cfg_.aggregate_outcomes ? r.failed : r.units;
      for (UnitOutcome& o : rec.outcomes) dst.push_back(std::move(o));
      records[frontier].reset();
      ++frontier;
    }
  };
  drain();  // resumed chunks may already form a complete prefix

  // Per-unit event streams (determinism-test fodder) keep the historic
  // one-slot-per-unit layout; only allocated when requested.
  std::vector<std::vector<obs::Event>> events(cfg_.keep_events ? n : 0);

  // Live telemetry rides strictly beside the deterministic machinery:
  // workers publish progress into lock-free per-worker slots, a sampler
  // thread folds the slots into JSONL heartbeats. Nothing below reads
  // telemetry state back into the chunk records, which is the whole
  // byte-identity-with-telemetry argument.
  obs::Telemetry telemetry(cfg_.telemetry, shards, runnable_units);
  telemetry.start();

  auto worker = [&](std::size_t worker_id) {
    // The hub is built inside the worker: one observer per thread, never
    // shared. Only the optional live sink crosses threads.
    obs::Hub hub(cfg_.trace);
    hub.set_strict(cfg_.strict_metrics);
    if (live_sink_ != nullptr) hub.add_sink(live_sink_);

    using tele_clock = std::chrono::steady_clock;
    obs::WorkerProgress* tp = telemetry.worker_slot(worker_id);
    tele_clock::time_point last = tp ? tele_clock::now()
                                     : tele_clock::time_point{};

    for (;;) {
      // Cooperative cancel: checked between chunk claims, so a cancelled
      // campaign stops at the next chunk boundary — in-flight chunks
      // finish (and checkpoint) normally.
      if (cfg_.cancel != nullptr &&
          cfg_.cancel->load(std::memory_order_relaxed)) {
        break;
      }
      const std::size_t c = next_chunk.fetch_add(1, std::memory_order_relaxed);
      if (c >= end_chunk) break;
      if (loaded[c]) continue;  // resumed; its record is already in place
      if (cfg_.max_chunks != 0 &&
          fresh_claimed.fetch_add(1, std::memory_order_relaxed) >=
              cfg_.max_chunks) {
        // Incremental-step budget exhausted (approximate under race):
        // stop claiming, leaving the rest for a later resumed call.
        break;
      }

      // One prototype clone per chunk: units inside the chunk clone from
      // this worker-local copy instead of the shared campaign prototype.
      // A clone of a clone is state-identical, so observable behaviour
      // (memoization hits included) is unchanged — this only moves the
      // clone source into the worker's cache.
      std::optional<si::CoupledBus> chunk_proto;
      const si::CoupledBus* proto = prototype_;
      if (prototype_ != nullptr) {
        chunk_proto.emplace(prototype_->clone());
        proto = &*chunk_proto;
      }

      ChunkRecord rec;
      rec.chunk = c;
      const std::size_t lo = c * chunk_size;
      const std::size_t hi = std::min(n, lo + chunk_size);
      for (std::size_t i = lo; i < hi; ++i) {
        // Materialize the unit here, inside the worker: for a lazy
        // source this is the only place unit i ever exists.
        const CampaignUnit* unit = nullptr;
        CampaignUnit materialized;
        if (source_ != nullptr) {
          materialized = source_->unit(i);
          unit = &materialized;
        } else {
          unit = &units_[i];
        }

        hub.reset();
        tele_clock::time_point t0{};
        if (tp != nullptr) {
          t0 = tele_clock::now();
          tp->add_idle(static_cast<std::uint64_t>(
              std::chrono::duration_cast<std::chrono::nanoseconds>(t0 - last)
                  .count()));
          tp->begin_unit(unit->name.c_str());
        }
        CampaignContext ctx(hub, worker_id, i, proto);
        UnitOutcome out;
        try {
          out = unit->run(ctx);
        } catch (const std::exception& e) {
          out = UnitOutcome{};
          out.failed = true;
          out.summary = std::string("error: ") + e.what();
        }
        out.name = unit->name;
        out.index = i;

        // Fold the unit into the chunk record in unit order.
        const obs::Registry& reg = hub.registry();
        rec.registry.merge(reg);
        ++rec.agg.units;
        rec.agg.total_tcks += out.total_tcks;
        rec.agg.generation_tcks += out.generation_tcks;
        rec.agg.observation_tcks += out.observation_tcks;
        if (out.violation) ++rec.agg.violations;
        if (out.failed) ++rec.agg.failures;
        if (cfg_.keep_events) events[i] = hub.tracer().events();
        if (tp != nullptr) {
          const tele_clock::time_point t1 = tele_clock::now();
          obs::UnitDelta d;
          d.busy_ns = static_cast<std::uint64_t>(
              std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
                  .count());
          d.transitions = reg.counter_value("bus.transitions");
          d.tcks = reg.counter_value("tck.total");
          d.table_hits = reg.counter_value("bus.table_hits");
          d.table_misses = reg.counter_value("bus.table_misses");
          d.memo_hits = reg.counter_value("bus.cache_hits");
          d.memo_misses = reg.counter_value("bus.cache_misses");
          tp->end_unit(d);
          last = t1;
        }
        if (!cfg_.aggregate_outcomes || out.failed) {
          rec.outcomes.push_back(std::move(out));
        }
      }

      // Publish: checkpoint the completed chunk, slot it, advance the
      // streaming fold over any now-consecutive frontier.
      {
        std::lock_guard<std::mutex> lk(publish_mu);
        if (ckpt.is_open()) ckpt.append(rec);
        records[c] = std::move(rec);
        drain();
      }
    }
  };

  if (shards == 1 || runnable_chunks <= 1) {
    worker(0);
    shards = 1;
  } else {
    std::vector<std::thread> pool;
    pool.reserve(shards);
    for (std::size_t w = 0; w < shards; ++w) pool.emplace_back(worker, w);
    for (std::thread& t : pool) t.join();
  }
  telemetry.stop();

  drain();  // no lock needed: workers are done
  r.complete = cfg_.range_begin == 0 && range_end == n && frontier == n_chunks;
  r.cancelled =
      cfg_.cancel != nullptr && cfg_.cancel->load(std::memory_order_relaxed);
  r.shards_used = shards;
  if (telemetry.enabled()) r.telemetry = telemetry.sample();
  if (cfg_.keep_events) r.events = std::move(events);
  return r;
}

}  // namespace jsi::core
