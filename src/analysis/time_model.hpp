#ifndef JSI_ANALYSIS_TIME_MODEL_HPP
#define JSI_ANALYSIS_TIME_MODEL_HPP

#include <cstdint>

#include "core/report.hpp"
#include "jtag/master.hpp"

namespace jsi::analysis {

/// Closed-form TCK budgets for the two architectures and three observation
/// methods (paper Tables 5-6).
///
/// These formulas mirror the exact protocol the sessions drive through the
/// TapMaster; unit tests assert formula == measured count for a grid of
/// (n, m), so the analytic O(n) / O(n²) claims in the paper are backed by
/// the cycle-accurate simulation.
///
/// Primitive costs (from the TAP FSM, all starting and ending in
/// Run-Test/Idle):
///   * TMS reset + idle entry ... 6 TCKs
///   * IR scan of w bits ........ w + 6 TCKs
///   * DR scan of L bits ........ L + 5 TCKs
///   * bare Update-DR pass ...... 5 TCKs
struct TimeModel {
  std::size_t n;         ///< interconnects under test
  std::size_t m = 1;     ///< extra standard cells in the chain
  std::size_t ir_w = 4;  ///< instruction-register width

  /// Boundary chain length 2n+m.
  std::uint64_t chain() const { return 2 * n + m; }

  static std::uint64_t reset_clocks() { return jtag::TapMaster::kResetToIdleTcks; }
  std::uint64_t ir_scan() const {
    return ir_w + jtag::TapMaster::kIrScanOverhead;
  }
  static std::uint64_t dr_scan(std::uint64_t bits) {
    return bits + jtag::TapMaster::kDrScanOverhead;
  }
  static std::uint64_t update_pulse() {
    return jtag::TapMaster::kUpdatePulseTcks;
  }

  /// Pattern-generation clocks of the enhanced (PGBSC) flow: reset, then
  /// per initial-value block a SAMPLE preload, the G-SITEST load, the
  /// victim-select scan, and per victim three update pulses plus a one-bit
  /// rotate scan. O(n).
  std::uint64_t pgbsc_generation() const;

  /// Pattern-application clocks of the conventional flow: reset, one
  /// instruction load, then 12 full-chain scans per victim. O(n²).
  std::uint64_t conventional_generation() const;

  /// Generation clocks of the parallel multi-victim extension: the
  /// per-round loop runs `guard` times instead of n (see
  /// SiTestSession::run_parallel).
  std::uint64_t pgbsc_parallel_generation(std::size_t guard) const;

  /// Generation clocks of the parallel multi-bus session over `buses`
  /// equal-width buses (chain 2*B*n+m, select scan B*n bits, shared
  /// per-victim loop; see core::MultiBusSession).
  std::uint64_t multibus_generation(std::size_t buses) const;

  /// One multi-bus read-out (no resume): IR load + ND and SD passes over
  /// the 2*B*n+m chain.
  std::uint64_t multibus_readout(std::size_t buses) const;

  /// One O-SITEST read-out: instruction load + an ND and an SD pass
  /// (+ G-SITEST reload when generation resumes afterwards).
  std::uint64_t readout(bool resume) const;

  /// Observation clocks for the enhanced flow (Table 6: k read-out
  /// repetitions; the paper evaluates k=1).
  std::uint64_t enhanced_observation(core::ObservationMethod method,
                                     std::uint64_t k = 1) const;

  /// Observation clocks for the conventional flow (method 2 degenerates to
  /// one read-out per victim; see ConventionalSession).
  std::uint64_t conventional_observation(core::ObservationMethod method,
                                         std::uint64_t k = 1) const;

  /// Total session clocks (generation + observation).
  std::uint64_t enhanced_total(core::ObservationMethod method) const;
  std::uint64_t conventional_total(core::ObservationMethod method) const;

  /// The paper's T% improvement row: 1 - enhanced/conventional (pattern
  /// generation only, as in Table 5).
  double generation_improvement() const;
};

}  // namespace jsi::analysis

#endif  // JSI_ANALYSIS_TIME_MODEL_HPP
