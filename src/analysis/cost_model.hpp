#ifndef JSI_ANALYSIS_COST_MODEL_HPP
#define JSI_ANALYSIS_COST_MODEL_HPP

#include <cstddef>
#include <string>

#include "si/bus_model.hpp"

namespace jsi::analysis {

/// NAND-equivalent area of each boundary-scan cell type, extracted from
/// the structural netlists in `jsi::bsc` via `rtl::nand_equiv` (paper
/// Table 7 methodology, with the gate library documented in rtl/area.hpp
/// replacing the Synopsys flow).
struct CellCosts {
  double standard_bsc;
  double pgbsc;
  double obsc;
};

/// Evaluate the netlists and return the per-cell costs.
CellCosts cell_costs();

/// Table 7 row: sending-side, observing-side and total NAND-equivalents
/// for an n-wire interconnect.
struct ArchCost {
  double sending;
  double observing;
  double total;
};

/// Conventional BSA: standard cells on both sides.
ArchCost conventional_cost(std::size_t n);

/// Enhanced BSA: PGBSCs sending, OBSCs observing.
ArchCost enhanced_cost(std::size_t n);

/// Area overhead factor enhanced/conventional (the paper: "almost twice").
double overhead_ratio(std::size_t n);

// Model-aware variants: the interconnect model's extra per-wire gates
// (reduced-swing driver bias network on the sending end, level-converting
// receiver on the observing end for low_swing; zero for rc_full_swing, so
// the plain overloads above are the `model = rc_full_swing` case and the
// paper's Table 7 numbers are untouched).

/// Conventional BSA over an n-wire bus of `model`.
ArchCost conventional_cost(std::size_t n, si::ModelKind model);

/// Enhanced BSA over an n-wire bus of `model`.
ArchCost enhanced_cost(std::size_t n, si::ModelKind model);

/// Area overhead factor enhanced/conventional under `model`.
double overhead_ratio(std::size_t n, si::ModelKind model);

/// Per-cell netlist breakdowns rendered as text (for the Table 7 bench).
std::string cell_cost_details();

}  // namespace jsi::analysis

#endif  // JSI_ANALYSIS_COST_MODEL_HPP
