#include "analysis/yield.hpp"

#include "core/session.hpp"
#include "mafm/fault.hpp"

namespace jsi::analysis {

using util::BitVec;

DieSample sample_die(std::size_t n_wires, const DefectDistribution& dist,
                     util::Prng& rng) {
  DieSample die;
  die.coupling_severity.assign(n_wires, 0.0);
  die.extra_resistance.assign(n_wires, 0.0);
  for (std::size_t w = 0; w < n_wires; ++w) {
    const double u = rng.next_double();
    if (u < dist.p_coupling) {
      die.coupling_severity[w] =
          dist.coupling_severity_min +
          rng.next_double() *
              (dist.coupling_severity_max - dist.coupling_severity_min);
    } else if (u < dist.p_coupling + dist.p_resistive) {
      die.extra_resistance[w] =
          dist.resistance_min +
          rng.next_double() * (dist.resistance_max - dist.resistance_min);
    }
  }
  return die;
}

void apply_die(const DieSample& die, si::CoupledBus& bus) {
  for (std::size_t w = 0; w < bus.n(); ++w) {
    if (die.coupling_severity[w] > 1.0) {
      bus.inject_crosstalk_defect(w, die.coupling_severity[w]);
    }
    if (die.extra_resistance[w] > 0.0) {
      bus.add_series_resistance(w, die.extra_resistance[w]);
    }
  }
}

GroundTruth evaluate_truth(const DieSample& die, const si::BusParams& params,
                           const SpecLimits& spec) {
  si::BusParams bp = params;
  const std::size_t n = bp.n_wires;
  si::CoupledBus bus(bp);
  apply_die(die, bus);

  GroundTruth truth;
  truth.noisy = BitVec(n, false);
  truth.skewed = BitVec(n, false);
  const double vdd = bp.vdd;

  for (std::size_t w = 0; w < n; ++w) {
    // Worst quiet-wire stress: both glitch polarities on both rails.
    for (const auto f : {mafm::MaFault::Pg, mafm::MaFault::PgBar,
                         mafm::MaFault::Ng, mafm::MaFault::NgBar}) {
      const auto p = mafm::vectors_for(f, n, w);
      const auto wf = bus.wire_response(w, p.v1, p.v2);
      const double rail = p.v1[w] ? vdd : 0.0;
      const double excursion =
          std::max(wf.max_value() - rail, rail - wf.min_value());
      if (excursion >= spec.max_glitch_frac * vdd) truth.noisy.set(w, true);
    }
    // Worst switching stress: Miller-doubled rising and falling edges.
    for (const auto f : {mafm::MaFault::Rs, mafm::MaFault::Fs}) {
      const auto p = mafm::vectors_for(f, n, w);
      const auto wf = bus.wire_response(w, p.v1, p.v2);
      const auto t = wf.last_crossing(vdd / 2);
      if (!t.has_value() || *t > spec.max_settle) truth.skewed.set(w, true);
    }
  }
  return truth;
}

YieldStats run_monte_carlo(std::size_t n_dies, const core::SocConfig& base,
                           const DefectDistribution& dist,
                           const SpecLimits& spec, std::uint64_t seed) {
  util::Prng rng(seed);
  YieldStats stats;
  const std::size_t n = base.n_wires;

  for (std::size_t d = 0; d < n_dies; ++d) {
    const DieSample die = sample_die(n, dist, rng);
    si::BusParams bp = base.bus;
    bp.n_wires = n;
    const GroundTruth truth = evaluate_truth(die, bp, spec);

    core::SiSocDevice soc(base);
    apply_die(die, soc.bus());
    core::SiTestSession session(soc);
    const core::IntegrityReport report =
        session.run(core::ObservationMethod::OnceAtEnd);

    const bool bad = truth.noisy.popcount() + truth.skewed.popcount() > 0;
    const bool flagged = report.any_violation();
    ++stats.dies;
    stats.truly_bad_dies += bad;
    stats.flagged_dies += flagged;
    stats.escaped_dies += bad && !flagged;
    stats.overkill_dies += flagged && !bad;

    for (std::size_t w = 0; w < n; ++w) {
      const bool truth_w = truth.noisy[w] || truth.skewed[w];
      const bool flag_w = report.nd_final[w] || report.sd_final[w];
      stats.wire_true_positive += truth_w && flag_w;
      stats.wire_false_positive += !truth_w && flag_w;
      stats.wire_false_negative += truth_w && !flag_w;
      stats.wire_true_negative += !truth_w && !flag_w;
    }
  }
  return stats;
}

}  // namespace jsi::analysis
