#ifndef JSI_ANALYSIS_YIELD_HPP
#define JSI_ANALYSIS_YIELD_HPP

#include <cstdint>
#include <vector>

#include "core/report.hpp"
#include "core/soc.hpp"
#include "si/bus.hpp"
#include "util/bitvec.hpp"
#include "util/prng.hpp"

namespace jsi::analysis {

/// Per-wire manufacturing-defect population model for Monte Carlo yield
/// studies: each wire independently stays clean, gains a crosstalk defect
/// (coupling scale + weak driver, `si::CoupledBus::inject_crosstalk_defect`
/// semantics), or gains a resistive open (series resistance).
struct DefectDistribution {
  double p_coupling = 0.06;   ///< probability of a crosstalk defect
  double p_resistive = 0.06;  ///< probability of a resistive open
  double coupling_severity_min = 2.0;
  double coupling_severity_max = 9.0;
  double resistance_min = 100.0;   ///< [Ohm]
  double resistance_max = 1200.0;  ///< [Ohm]
};

/// One sampled die: per-wire defect magnitudes (0 / 0.0 = clean).
struct DieSample {
  std::vector<double> coupling_severity;  ///< per wire; <=1 means none
  std::vector<double> extra_resistance;   ///< per wire [Ohm]
};

/// Draw a die from the distribution.
DieSample sample_die(std::size_t n_wires, const DefectDistribution& dist,
                     util::Prng& rng);

/// Inject the sampled defects into a bus model.
void apply_die(const DieSample& die, si::CoupledBus& bus);

/// Shipping-spec limits defining *ground truth* (independent of the
/// detector thresholds, so escapes and overkill are well defined).
struct SpecLimits {
  double max_glitch_frac = 0.45;   ///< worst quiet-wire excursion / Vdd
  sim::Time max_settle = 200;      ///< worst-case 50% arrival [ps]
};

/// Physics-level ground truth for one die: which wires violate the spec
/// under worst-case MA stress (computed directly from the bus model, no
/// DFT involved).
struct GroundTruth {
  util::BitVec noisy;
  util::BitVec skewed;
  bool die_bad() const { return noisy.popcount() + sd_popcount() > 0; }
  std::size_t sd_popcount() const { return skewed.popcount(); }
};

GroundTruth evaluate_truth(const DieSample& die, const si::BusParams& params,
                           const SpecLimits& spec);

/// Aggregated Monte Carlo outcome.
struct YieldStats {
  std::size_t dies = 0;
  std::size_t truly_bad_dies = 0;
  std::size_t flagged_dies = 0;
  std::size_t escaped_dies = 0;   ///< bad but not flagged
  std::size_t overkill_dies = 0;  ///< flagged but good

  // Wire-granular confusion counts.
  std::size_t wire_true_positive = 0;
  std::size_t wire_false_positive = 0;
  std::size_t wire_false_negative = 0;
  std::size_t wire_true_negative = 0;

  double die_escape_rate() const {
    return truly_bad_dies == 0
               ? 0.0
               : static_cast<double>(escaped_dies) / truly_bad_dies;
  }
  double die_overkill_rate() const {
    const auto good = dies - truly_bad_dies;
    return good == 0 ? 0.0 : static_cast<double>(overkill_dies) / good;
  }
  double wire_sensitivity() const {
    const auto pos = wire_true_positive + wire_false_negative;
    return pos == 0 ? 1.0 : static_cast<double>(wire_true_positive) / pos;
  }
};

/// Run the full Monte Carlo: `n_dies` samples, each tested through the
/// complete G-SITEST/O-SITEST session on a fresh `SiSocDevice` built from
/// `base` (detector thresholds included), compared against the
/// physics-level ground truth under `spec`. Deterministic in `seed`.
YieldStats run_monte_carlo(std::size_t n_dies, const core::SocConfig& base,
                           const DefectDistribution& dist,
                           const SpecLimits& spec, std::uint64_t seed);

}  // namespace jsi::analysis

#endif  // JSI_ANALYSIS_YIELD_HPP
