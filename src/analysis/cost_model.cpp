#include "analysis/cost_model.hpp"

#include <sstream>

#include "bsc/netlists.hpp"
#include "rtl/area.hpp"
#include "si/model.hpp"

namespace jsi::analysis {

CellCosts cell_costs() {
  return CellCosts{
      rtl::nand_equiv(bsc::build_standard_bsc_netlist()),
      rtl::nand_equiv(bsc::build_pgbsc_netlist()),
      rtl::nand_equiv(bsc::build_obsc_netlist()),
  };
}

ArchCost conventional_cost(std::size_t n) {
  const CellCosts c = cell_costs();
  const double side = static_cast<double>(n) * c.standard_bsc;
  return ArchCost{side, side, 2 * side};
}

ArchCost enhanced_cost(std::size_t n) {
  const CellCosts c = cell_costs();
  const double send = static_cast<double>(n) * c.pgbsc;
  const double obs = static_cast<double>(n) * c.obsc;
  return ArchCost{send, obs, send + obs};
}

double overhead_ratio(std::size_t n) {
  return enhanced_cost(n).total / conventional_cost(n).total;
}

namespace {

/// Add the interconnect model's per-wire driver/receiver gates to a
/// cell-level cost. Both architectures pay them: the bus electricals are
/// independent of which boundary-cell family observes them.
ArchCost add_model_gates(ArchCost c, std::size_t n, si::ModelKind model) {
  const si::InterconnectModel& im = si::model_for(model);
  c.sending += static_cast<double>(n) * im.extra_sending_gates_per_wire();
  c.observing += static_cast<double>(n) * im.extra_observing_gates_per_wire();
  c.total = c.sending + c.observing;
  return c;
}

}  // namespace

ArchCost conventional_cost(std::size_t n, si::ModelKind model) {
  return add_model_gates(conventional_cost(n), n, model);
}

ArchCost enhanced_cost(std::size_t n, si::ModelKind model) {
  return add_model_gates(enhanced_cost(n), n, model);
}

double overhead_ratio(std::size_t n, si::ModelKind model) {
  return enhanced_cost(n, model).total / conventional_cost(n, model).total;
}

std::string cell_cost_details() {
  std::ostringstream os;
  os << rtl::format_area_report(bsc::build_standard_bsc_netlist()) << '\n'
     << rtl::format_area_report(bsc::build_pgbsc_netlist()) << '\n'
     << rtl::format_area_report(bsc::build_obsc_netlist());
  return os.str();
}

}  // namespace jsi::analysis
