#include "analysis/time_model.hpp"


#include <algorithm>
namespace jsi::analysis {

using core::ObservationMethod;

std::uint64_t TimeModel::pgbsc_generation() const {
  const std::uint64_t per_victim = 3 * update_pulse() + dr_scan(1);
  const std::uint64_t per_block =
      2 * ir_scan() + dr_scan(chain()) + dr_scan(n) + n * per_victim;
  return reset_clocks() + 2 * per_block;
}

std::uint64_t TimeModel::conventional_generation() const {
  return reset_clocks() + ir_scan() + 12ull * n * dr_scan(chain());
}

std::uint64_t TimeModel::pgbsc_parallel_generation(std::size_t guard) const {
  const std::uint64_t rounds = std::min(guard, n);
  const std::uint64_t per_round = 3 * update_pulse() + dr_scan(1);
  const std::uint64_t per_block =
      2 * ir_scan() + dr_scan(chain()) + dr_scan(n) + rounds * per_round;
  return reset_clocks() + 2 * per_block;
}

std::uint64_t TimeModel::multibus_generation(std::size_t buses) const {
  const std::uint64_t chain_len = 2 * buses * n + m;
  const std::uint64_t per_victim = 3 * update_pulse() + dr_scan(1);
  const std::uint64_t per_block = 2 * ir_scan() + dr_scan(chain_len) +
                                  dr_scan(buses * n) + n * per_victim;
  return reset_clocks() + 2 * per_block;
}

std::uint64_t TimeModel::multibus_readout(std::size_t buses) const {
  const std::uint64_t chain_len = 2 * buses * n + m;
  return ir_scan() + 2 * dr_scan(chain_len);
}

std::uint64_t TimeModel::readout(bool resume) const {
  return ir_scan() + 2 * dr_scan(chain()) + (resume ? ir_scan() : 0);
}

std::uint64_t TimeModel::enhanced_observation(ObservationMethod method,
                                              std::uint64_t k) const {
  switch (method) {
    case ObservationMethod::OnceAtEnd:
      return k * readout(false);
    case ObservationMethod::PerInitValue:
      return 2 * k * readout(false);
    case ObservationMethod::PerPattern: {
      // Per block: 4n+1 read-outs, all but the last resuming G-SITEST.
      const std::uint64_t per_block =
          (4 * n + 1) * readout(false) + (4 * n) * ir_scan();
      return 2 * k * per_block;
    }
  }
  return 0;
}

std::uint64_t TimeModel::conventional_observation(ObservationMethod method,
                                                  std::uint64_t k) const {
  switch (method) {
    case ObservationMethod::OnceAtEnd:
      return k * readout(false);
    case ObservationMethod::PerInitValue:
      // One read-out per victim; all but the last resume.
      return k * (n * readout(false) + (n - 1) * ir_scan());
    case ObservationMethod::PerPattern:
      return k * (12 * n * readout(false) + (12 * n - 1) * ir_scan());
  }
  return 0;
}

std::uint64_t TimeModel::enhanced_total(ObservationMethod method) const {
  return pgbsc_generation() + enhanced_observation(method);
}

std::uint64_t TimeModel::conventional_total(ObservationMethod method) const {
  return conventional_generation() + conventional_observation(method);
}

double TimeModel::generation_improvement() const {
  const double conv = static_cast<double>(conventional_generation());
  const double enh = static_cast<double>(pgbsc_generation());
  return 1.0 - enh / conv;
}

}  // namespace jsi::analysis
