#ifndef JSI_MAFM_SCHEDULE_HPP
#define JSI_MAFM_SCHEDULE_HPP

#include <cstddef>
#include <optional>
#include <vector>

#include "mafm/fault.hpp"
#include "util/bitvec.hpp"

namespace jsi::mafm {

/// Conventional-BSA schedule: every one of the 6 vector pairs per victim,
/// each vector scanned in individually (paper §3.1: "2n² test patterns...
/// O(n²) clocks"). Returns the 12 bus states to apply, in order, for one
/// victim.
std::vector<util::BitVec> conventional_victim_sequence(std::size_t n,
                                                       std::size_t victim);

/// Full conventional session: victim 0..n-1, 12 vectors each (12n total).
std::vector<util::BitVec> conventional_session(std::size_t n);

/// One Update-DR event of the PGBSC reference sequence.
struct PgbscStep {
  util::BitVec vector;           ///< bus state after the update
  std::size_t victim;            ///< selected victim at the update
  std::optional<MaFault> fault;  ///< MA fault excited by this transition
  bool from_rotate_scan;         ///< update belonged to a victim-rotate scan
};

/// Golden reference for the hardware pattern generator (paper Figs 5 & 8).
///
/// Models the PGBSC update semantics exactly — FF3 divider starting at 1,
/// aggressors toggling every Update-DR, the victim at half rate — for one
/// initial value. The sequence contains 4n+1 updates:
///   update 0   — end of the victim-select scan (excites the victim-0
///                glitch fault immediately),
///   then per victim: two more pattern updates, one all-toggle "reset"
///   update, and the rotate-scan update exciting the next victim's first
///   fault.
///
/// With initial value 0 every victim receives {Pg, Rs, Pg'}; with initial
/// value 1, {Ng, Fs, Ng'}.
std::vector<PgbscStep> pgbsc_reference_sequence(std::size_t n,
                                                bool initial_value);

/// Distinct MA faults excited on `victim` by a reference sequence.
std::vector<MaFault> faults_covered(const std::vector<PgbscStep>& seq,
                                    std::size_t victim);

/// Parallel (multi-victim) extension: victims spaced `guard` wires apart
/// are tested simultaneously — legitimate whenever coupling is
/// nearest-neighbour dominated, since every victim's adjacent wires are
/// still aggressors. Round r selects victims {r, r+guard, r+2*guard, ...};
/// `guard` rounds cover every wire. Requires guard >= 2 (guard == n
/// degenerates to the paper's one-victim-at-a-time flow).
std::vector<std::vector<std::size_t>> parallel_victim_rounds(
    std::size_t n, std::size_t guard);

/// One Update-DR of the parallel-victim reference sequence.
struct ParallelStep {
  util::BitVec vector;               ///< bus state after the update
  std::vector<std::size_t> victims;  ///< selected victims at the update
  bool from_rotate_scan;
};

/// Golden reference for multi-hot pattern generation: per initial value,
/// 4*guard + 1 updates instead of 4n + 1.
std::vector<ParallelStep> pgbsc_parallel_reference(std::size_t n,
                                                   std::size_t guard,
                                                   bool initial_value);

/// What a *single*-initial-value PGBSC scheme would cover if it simply kept
/// running (the paper's §3.1 ablation: the victim passes through both
/// levels and the aggressor:victim frequency ratio breaks). Used by the
/// `ablation_one_init` bench.
std::vector<PgbscStep> single_init_extended_sequence(std::size_t n,
                                                     std::size_t updates);

}  // namespace jsi::mafm

#endif  // JSI_MAFM_SCHEDULE_HPP
