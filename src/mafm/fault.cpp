#include "mafm/fault.hpp"

#include <ostream>
#include <stdexcept>

namespace jsi::mafm {

using util::BitVec;

std::string_view fault_name(MaFault f) {
  switch (f) {
    case MaFault::Pg: return "Pg";
    case MaFault::PgBar: return "Pg'";
    case MaFault::Ng: return "Ng";
    case MaFault::NgBar: return "Ng'";
    case MaFault::Rs: return "Rs";
    case MaFault::Fs: return "Fs";
  }
  return "?";
}

VectorPair vectors_for(MaFault f, std::size_t n, std::size_t victim) {
  if (victim >= n) throw std::out_of_range("victim >= n");
  const BitVec zeros = BitVec::zeros(n);
  const BitVec ones = BitVec::ones(n);
  const BitVec hot = BitVec::one_hot(n, victim);   // victim 1, aggressors 0
  const BitVec cold = ~hot;                        // victim 0, aggressors 1
  switch (f) {
    case MaFault::Pg: return {zeros, cold};
    case MaFault::PgBar: return {hot, ones};
    case MaFault::Ng: return {ones, hot};
    case MaFault::NgBar: return {cold, zeros};
    case MaFault::Rs: return {cold, hot};
    case MaFault::Fs: return {hot, cold};
  }
  throw std::invalid_argument("bad fault");
}

namespace {

/// Shared classification core: `first`..`last` is the aggressor range
/// (inclusive), victim excluded.
std::optional<MaFault> classify_range(const BitVec& prev, const BitVec& next,
                                      std::size_t victim, std::size_t first,
                                      std::size_t last) {
  // All aggressors in range must switch the same way.
  int agg = 2;  // 2 = unset
  for (std::size_t i = first; i <= last; ++i) {
    if (i == victim) continue;
    const int d = (next[i] ? 1 : 0) - (prev[i] ? 1 : 0);
    if (agg == 2) {
      agg = d;
    } else if (agg != d) {
      return std::nullopt;
    }
  }
  if (agg == 0 || agg == 2) return std::nullopt;

  const int dv = (next[victim] ? 1 : 0) - (prev[victim] ? 1 : 0);
  if (agg > 0) {  // aggressors rising
    if (dv == 0) return prev[victim] ? MaFault::PgBar : MaFault::Pg;
    if (dv < 0) return MaFault::Fs;
    return std::nullopt;  // victim rising with aggressors: no MA stress
  }
  // Aggressors falling.
  if (dv == 0) return prev[victim] ? MaFault::Ng : MaFault::NgBar;
  if (dv > 0) return MaFault::Rs;
  return std::nullopt;
}

}  // namespace

std::optional<MaFault> classify(const BitVec& prev, const BitVec& next,
                                std::size_t victim) {
  const std::size_t n = prev.size();
  if (next.size() != n) throw std::invalid_argument("width mismatch");
  if (victim >= n) throw std::out_of_range("victim >= n");
  if (n < 2) return std::nullopt;
  return classify_range(prev, next, victim, 0, n - 1);
}

std::optional<MaFault> classify_neighborhood(const BitVec& prev,
                                             const BitVec& next,
                                             std::size_t victim) {
  const std::size_t n = prev.size();
  if (next.size() != n) throw std::invalid_argument("width mismatch");
  if (victim >= n) throw std::out_of_range("victim >= n");
  if (n < 2) return std::nullopt;
  const std::size_t first = victim == 0 ? 0 : victim - 1;
  const std::size_t last = victim + 1 < n ? victim + 1 : n - 1;
  return classify_range(prev, next, victim, first, last);
}

std::ostream& operator<<(std::ostream& os, MaFault f) {
  return os << fault_name(f);
}

}  // namespace jsi::mafm
