#include "mafm/schedule.hpp"

#include <algorithm>
#include <stdexcept>

namespace jsi::mafm {

using util::BitVec;

std::vector<BitVec> conventional_victim_sequence(std::size_t n,
                                                 std::size_t victim) {
  std::vector<BitVec> seq;
  seq.reserve(12);
  for (const MaFault f : kAllFaults) {
    const VectorPair p = vectors_for(f, n, victim);
    seq.push_back(p.v1);
    seq.push_back(p.v2);
  }
  return seq;
}

std::vector<BitVec> conventional_session(std::size_t n) {
  std::vector<BitVec> seq;
  seq.reserve(12 * n);
  for (std::size_t v = 0; v < n; ++v) {
    auto part = conventional_victim_sequence(n, v);
    seq.insert(seq.end(), part.begin(), part.end());
  }
  return seq;
}

std::vector<std::vector<std::size_t>> parallel_victim_rounds(
    std::size_t n, std::size_t guard) {
  if (guard < 2) throw std::invalid_argument("guard must be >= 2");
  std::vector<std::vector<std::size_t>> rounds;
  for (std::size_t r = 0; r < guard && r < n; ++r) {
    std::vector<std::size_t> victims;
    for (std::size_t v = r; v < n; v += guard) victims.push_back(v);
    rounds.push_back(std::move(victims));
  }
  return rounds;
}

namespace {

/// Shared update semantics of a column of PGBSCs (see Pgbsc::update).
class RefGenerator {
 public:
  RefGenerator(std::size_t n, bool initial_value)
      : q2_(n, initial_value), sel_(BitVec::one_hot(n, 0)) {}

  RefGenerator(std::size_t n, bool initial_value, BitVec select)
      : q2_(n, initial_value), sel_(std::move(select)) {}

  PgbscStep update(bool from_rotate_scan) {
    const BitVec prev = q2_;
    const bool ff3_old = ff3_;
    ff3_ = !ff3_;
    for (std::size_t i = 0; i < q2_.size(); ++i) {
      const bool victim = sel_[i];
      const bool clk = victim ? (!ff3_old && ff3_) : true;
      if (clk) q2_.set(i, !q2_[i]);
    }
    const std::size_t victim = victim_index();
    std::optional<MaFault> fault;
    if (victim < q2_.size()) fault = classify(prev, q2_, victim);
    return PgbscStep{q2_, victim, fault, from_rotate_scan};
  }

  void rotate() { sel_.shift_in(false); }

  /// Currently selected victims (any number of hot bits).
  std::vector<std::size_t> victims() const {
    std::vector<std::size_t> out;
    for (std::size_t i = 0; i < sel_.size(); ++i) {
      if (sel_[i]) out.push_back(i);
    }
    return out;
  }

  const BitVec& vector() const { return q2_; }

  std::size_t victim_index() const {
    for (std::size_t i = 0; i < sel_.size(); ++i) {
      if (sel_[i]) return i;
    }
    return sel_.size();  // one-hot shifted out: no victim selected
  }

 private:
  BitVec q2_;
  BitVec sel_;
  bool ff3_ = true;
};

}  // namespace

std::vector<PgbscStep> pgbsc_reference_sequence(std::size_t n,
                                                bool initial_value) {
  if (n < 2) throw std::invalid_argument("MA model needs >= 2 wires");
  RefGenerator gen(n, initial_value);
  std::vector<PgbscStep> steps;
  steps.reserve(4 * n + 1);
  // The victim-select scan's trailing Update-DR fires the first pattern.
  steps.push_back(gen.update(false));
  for (std::size_t v = 0; v < n; ++v) {
    for (int i = 0; i < 3; ++i) steps.push_back(gen.update(false));
    gen.rotate();
    steps.push_back(gen.update(true));
  }
  return steps;
}

std::vector<MaFault> faults_covered(const std::vector<PgbscStep>& seq,
                                    std::size_t victim) {
  std::vector<MaFault> out;
  for (const auto& s : seq) {
    if (s.victim == victim && s.fault.has_value()) {
      if (std::find(out.begin(), out.end(), *s.fault) == out.end()) {
        out.push_back(*s.fault);
      }
    }
  }
  return out;
}

std::vector<ParallelStep> pgbsc_parallel_reference(std::size_t n,
                                                   std::size_t guard,
                                                   bool initial_value) {
  if (n < 2) throw std::invalid_argument("MA model needs >= 2 wires");
  const auto rounds = parallel_victim_rounds(n, guard);
  BitVec select(n, false);
  for (std::size_t v : rounds.front()) select.set(v, true);
  RefGenerator gen(n, initial_value, select);

  std::vector<ParallelStep> steps;
  steps.reserve(4 * rounds.size() + 1);
  auto record = [&](bool rotate) {
    gen.update(false);
    steps.push_back(ParallelStep{gen.vector(), gen.victims(), rotate});
  };
  // The victim-select scan's trailing update fires the first pattern.
  record(false);
  for (std::size_t r = 0; r < rounds.size(); ++r) {
    for (int i = 0; i < 3; ++i) record(false);
    gen.rotate();  // advance every hot bit by one wire
    record(true);
  }
  return steps;
}

std::vector<PgbscStep> single_init_extended_sequence(std::size_t n,
                                                     std::size_t updates) {
  if (n < 2) throw std::invalid_argument("MA model needs >= 2 wires");
  RefGenerator gen(n, false);
  std::vector<PgbscStep> steps;
  steps.reserve(updates);
  for (std::size_t i = 0; i < updates; ++i) {
    steps.push_back(gen.update(false));
  }
  return steps;
}

}  // namespace jsi::mafm
