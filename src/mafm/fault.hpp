#ifndef JSI_MAFM_FAULT_HPP
#define JSI_MAFM_FAULT_HPP

#include <array>
#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string_view>

#include "util/bitvec.hpp"

namespace jsi::mafm {

/// The six integrity faults of the Maximum-Aggressor fault model
/// (Cuviello et al., paper Fig 3): for a victim wire among n interconnects,
/// all other wires act as aggressors switching in unison.
enum class MaFault : std::uint8_t {
  Pg,     ///< positive glitch: victim quiet 0, aggressors rise
  PgBar,  ///< positive glitch on a high line: victim quiet 1, aggressors rise
  Ng,     ///< negative glitch: victim quiet 1, aggressors fall
  NgBar,  ///< negative glitch on a low line: victim quiet 0, aggressors fall
  Rs,     ///< rising skew: victim rises, aggressors fall
  Fs,     ///< falling skew: victim falls, aggressors rise
};

inline constexpr std::array<MaFault, 6> kAllFaults{
    MaFault::Pg, MaFault::PgBar, MaFault::Ng,
    MaFault::NgBar, MaFault::Rs, MaFault::Fs};

/// Display name: "Pg", "Pg'", "Ng", "Ng'", "Rs", "Fs".
std::string_view fault_name(MaFault f);

/// True for the glitch (noise) faults caught by the ND cell; false for the
/// skew faults caught by the SD cell.
constexpr bool is_noise_fault(MaFault f) {
  return f != MaFault::Rs && f != MaFault::Fs;
}

/// The two consecutive test vectors exciting one MA fault.
struct VectorPair {
  util::BitVec v1;  ///< bus state before the transition
  util::BitVec v2;  ///< bus state after the transition
};

/// Vector pair exciting fault `f` on `victim` in an `n`-wire bus.
/// Throws std::out_of_range when victim >= n.
VectorPair vectors_for(MaFault f, std::size_t n, std::size_t victim);

/// Identify which MA fault (if any) the bus transition `prev -> next`
/// excites on wire `victim`: requires every aggressor to switch the same
/// direction and the victim to behave per the fault definition.
std::optional<MaFault> classify(const util::BitVec& prev,
                                const util::BitVec& next, std::size_t victim);

/// Like `classify`, but considering only the victim's *adjacent* wires as
/// aggressors. Under a nearest-neighbour coupling model this is the
/// stress that actually reaches the victim, and it is what multi-victim
/// (parallel) pattern generation preserves: distant wires may do anything.
std::optional<MaFault> classify_neighborhood(const util::BitVec& prev,
                                             const util::BitVec& next,
                                             std::size_t victim);

std::ostream& operator<<(std::ostream& os, MaFault f);

}  // namespace jsi::mafm

#endif  // JSI_MAFM_FAULT_HPP
