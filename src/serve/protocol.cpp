#include "serve/protocol.hpp"

#include <algorithm>
#include <stdexcept>

namespace jsi::serve {

namespace json = jsi::util::json;

std::string encode_frame(std::string_view payload) {
  if (payload.empty()) {
    throw std::invalid_argument("frame: empty payload");
  }
  if (payload.size() > kMaxFramePayload) {
    throw std::invalid_argument("frame: payload over the size ceiling");
  }
  std::string out = std::to_string(payload.size());
  out += '\n';
  out += payload;
  return out;
}

std::string encode_frame(const util::json::Value& v) {
  return encode_frame(json::to_text(v, 0));
}

void FrameReader::feed(std::string_view data) {
  if (bad()) return;
  buf_.append(data.data(), data.size());
}

std::optional<std::string> FrameReader::next() {
  if (bad()) return std::nullopt;

  // Locate the length field. We scan at most kMaxLengthDigits + 1 bytes:
  // a longer digit run cannot be a legal length, and a non-digit before
  // the '\n' means the framing is lost for good.
  std::size_t nl = std::string::npos;
  const std::size_t scan = std::min(buf_.size(), kMaxLengthDigits + 1);
  for (std::size_t i = 0; i < scan; ++i) {
    const char c = buf_[i];
    if (c == '\n') {
      nl = i;
      break;
    }
    if (c < '0' || c > '9') {
      err_ = "malformed frame length (non-digit byte)";
      return std::nullopt;
    }
  }
  if (nl == std::string::npos) {
    if (buf_.size() > kMaxLengthDigits) {
      err_ = "malformed frame length (no terminator)";
    }
    return std::nullopt;  // need more bytes
  }
  if (nl == 0) {
    err_ = "malformed frame length (empty)";
    return std::nullopt;
  }

  std::size_t len = 0;
  for (std::size_t i = 0; i < nl; ++i) {
    len = len * 10 + static_cast<std::size_t>(buf_[i] - '0');
    if (len > kMaxFramePayload) {
      err_ = "frame payload over the size ceiling";
      return std::nullopt;
    }
  }
  if (len == 0) {
    err_ = "malformed frame (zero-length payload)";
    return std::nullopt;
  }
  if (buf_.size() < nl + 1 + len) return std::nullopt;  // need more bytes

  std::string payload = buf_.substr(nl + 1, len);
  buf_.erase(0, nl + 1 + len);
  return payload;
}

json::Value ok_response() {
  json::Value v = json::Value::make_object();
  v.add("ok", json::Value::make_bool(true));
  return v;
}

json::Value error_response(std::string code, std::string message) {
  json::Value v = json::Value::make_object();
  v.add("ok", json::Value::make_bool(false));
  v.add("error", json::Value::make_string(std::move(code)));
  v.add("message", json::Value::make_string(std::move(message)));
  return v;
}

std::optional<json::Value> parse_message(std::string_view payload,
                                         std::string* error) {
  std::string err;
  std::optional<json::Value> v = json::parse(payload, &err);
  if (!v) {
    if (error != nullptr) *error = "json: " + err;
    return std::nullopt;
  }
  if (!v->is_object()) {
    if (error != nullptr) *error = "message is not a JSON object";
    return std::nullopt;
  }
  return v;
}

const json::Value* find_member(const json::Value& v, const std::string& key) {
  return v.is_object() ? v.find(key) : nullptr;
}

std::string string_or(const json::Value& v, const std::string& key,
                      const std::string& fallback) {
  const json::Value* m = find_member(v, key);
  return m != nullptr && m->is_string() ? m->str : fallback;
}

std::optional<std::uint64_t> u64_or_nothing(const json::Value& v,
                                            const std::string& key) {
  const json::Value* m = find_member(v, key);
  if (m == nullptr || !m->is_number() || m->number < 0) return std::nullopt;
  const auto u = static_cast<std::uint64_t>(m->number);
  if (m->number != static_cast<double>(u)) return std::nullopt;
  return u;
}

bool bool_or(const json::Value& v, const std::string& key, bool fallback) {
  const json::Value* m = find_member(v, key);
  return m != nullptr && m->is_bool() ? m->boolean : fallback;
}

}  // namespace jsi::serve
