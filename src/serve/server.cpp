#include "serve/server.hpp"

#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <ostream>
#include <stdexcept>
#include <streambuf>

#include "scenario/parse.hpp"

namespace jsi::serve {

namespace json = jsi::util::json;

namespace {

[[noreturn]] void sys_fail(const std::string& what) {
  throw std::runtime_error("serve: " + what + ": " + std::strerror(errno));
}

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    sys_fail("fcntl(O_NONBLOCK)");
  }
}

/// Millisecond bucket bounds for the serve latency histograms (the
/// default Histogram bounds are scaled for TCK counts).
std::vector<double> ms_bounds() {
  return {1,   2,    5,    10,   20,    50,    100,  200,
          500, 1000, 2000, 5000, 10000, 30000, 60000};
}

/// std::ostream sink that slices the telemetry heartbeat stream into
/// lines and hands each completed line to a callback — the bridge from
/// obs::Telemetry's sampler thread into the server's per-job record log.
class LineSinkBuf : public std::streambuf {
 public:
  explicit LineSinkBuf(std::function<void(std::string)> cb)
      : cb_(std::move(cb)) {}

 protected:
  int overflow(int ch) override {
    if (ch == traits_type::eof()) return 0;
    const char c = static_cast<char>(ch);
    if (c == '\n') {
      if (!line_.empty()) cb_(std::move(line_));
      line_.clear();
    } else {
      line_.push_back(c);
    }
    return ch;
  }

  std::streamsize xsputn(const char* s, std::streamsize n) override {
    for (std::streamsize i = 0; i < n; ++i) {
      overflow(static_cast<unsigned char>(s[i]));
    }
    return n;
  }

 private:
  std::function<void(std::string)> cb_;
  std::string line_;
};

/// Cap on a job's retained JSONL record log. State transitions are a
/// handful of records; the rest are telemetry heartbeats, whose rate is
/// bounded by the interval — this cap only guards against a pathological
/// interval on a very long job.
constexpr std::size_t kMaxJobLog = 16384;

}  // namespace

const char* to_string(JobState s) {
  switch (s) {
    case JobState::Queued:
      return "queued";
    case JobState::Running:
      return "running";
    case JobState::Done:
      return "done";
    case JobState::Failed:
      return "failed";
    case JobState::Cancelled:
      return "cancelled";
  }
  return "?";
}

struct Server::Job {
  std::uint64_t id = 0;
  std::string name;
  scenario::ScenarioSpec spec;
  std::optional<std::size_t> shards;
  bool stream = false;
  JobState state = JobState::Queued;
  std::string error;
  scenario::ScenarioOutcome outcome;
  /// Shared with the campaign runner across the unlock while the job
  /// executes; shared_ptr so a hypothetical future job eviction cannot
  /// invalidate the runner's view.
  std::shared_ptr<std::atomic<bool>> cancel =
      std::make_shared<std::atomic<bool>>(false);
  /// JSONL records for subscribers: state transitions + telemetry
  /// heartbeats, in emission order.
  std::vector<std::string> log;
  std::chrono::steady_clock::time_point submitted_at{};
  std::chrono::steady_clock::time_point started_at{};
};

struct Server::Connection {
  int fd = -1;
  FrameReader reader;
  std::string out;  ///< bytes queued towards the client
  bool streaming = false;
  std::uint64_t stream_job = 0;
  std::size_t stream_pos = 0;  ///< next log record to push
  bool closing = false;        ///< close once `out` drains
  bool dead = false;           ///< sweep at end of the loop iteration
};

Server::Server(ServerConfig cfg) : cfg_(std::move(cfg)) {
  if (cfg_.pool == 0) cfg_.pool = 1;
  if (cfg_.max_queue == 0) cfg_.max_queue = 1;
}

Server::~Server() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_workers_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : pool_) {
    if (t.joinable()) t.join();
  }
  for (auto& [fd, c] : conns_) ::close(fd);
  conns_.clear();
  if (listen_fd_ >= 0) ::close(listen_fd_);
  if (wake_rd_ >= 0) ::close(wake_rd_);
  if (wake_wr_ >= 0) ::close(wake_wr_);
  if (!cfg_.unix_path.empty()) {
    std::error_code ec;
    std::filesystem::remove(cfg_.unix_path, ec);
  }
}

void Server::start() {
  int pipefd[2];
  if (::pipe(pipefd) != 0) sys_fail("pipe");
  wake_rd_ = pipefd[0];
  wake_wr_ = pipefd[1];
  set_nonblocking(wake_rd_);
  set_nonblocking(wake_wr_);

  if (!cfg_.unix_path.empty()) {
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (cfg_.unix_path.size() >= sizeof(addr.sun_path)) {
      throw std::runtime_error("serve: unix socket path too long: " +
                               cfg_.unix_path);
    }
    std::memcpy(addr.sun_path, cfg_.unix_path.c_str(),
                cfg_.unix_path.size() + 1);
    listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (listen_fd_ < 0) sys_fail("socket(AF_UNIX)");
    ::unlink(cfg_.unix_path.c_str());
    if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
               sizeof(addr)) != 0) {
      sys_fail("bind(" + cfg_.unix_path + ")");
    }
  } else if (cfg_.use_tcp) {
    listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listen_fd_ < 0) sys_fail("socket(AF_INET)");
    const int one = 1;
    ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(cfg_.tcp_port);
    if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
               sizeof(addr)) != 0) {
      sys_fail("bind(127.0.0.1:" + std::to_string(cfg_.tcp_port) + ")");
    }
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len) !=
        0) {
      sys_fail("getsockname");
    }
    bound_port_ = ntohs(bound.sin_port);
  } else {
    throw std::runtime_error(
        "serve: configure either a unix socket path or TCP");
  }
  if (::listen(listen_fd_, SOMAXCONN) != 0) sys_fail("listen");
  set_nonblocking(listen_fd_);

  {
    std::lock_guard<std::mutex> lk(mu_);
    metrics_.gauge("serve.pool").set(static_cast<double>(cfg_.pool));
    metrics_.gauge("serve.max_queue").set(static_cast<double>(cfg_.max_queue));
    metrics_.histogram("serve.job_wall_ms", ms_bounds());
    metrics_.histogram("serve.queue_wait_ms", ms_bounds());
  }

  pool_.reserve(cfg_.pool);
  for (std::size_t w = 0; w < cfg_.pool; ++w) {
    pool_.emplace_back([this] { worker_loop(); });
  }
}

void Server::wake() noexcept {
  const char b = 'W';
  [[maybe_unused]] const ssize_t n = ::write(wake_wr_, &b, 1);
}

void Server::signal_drain() noexcept {
  const char b = 'D';
  [[maybe_unused]] const ssize_t n = ::write(wake_wr_, &b, 1);
}

void Server::request_drain() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    draining_ = true;
  }
  cv_.notify_all();
  wake();
}

obs::Registry Server::metrics_snapshot() const {
  std::lock_guard<std::mutex> lk(mu_);
  return metrics_;
}

std::optional<JobInfo> Server::job_info(std::uint64_t id) const {
  std::lock_guard<std::mutex> lk(mu_);
  const auto it = jobs_.find(id);
  if (it == jobs_.end()) return std::nullopt;
  return info_locked(*it->second);
}

JobInfo Server::info_locked(const Job& job) const {
  JobInfo info;
  info.id = job.id;
  info.name = job.name;
  info.state = job.state;
  info.error = job.error;
  if (job.state == JobState::Done) {
    info.units = job.outcome.result.units_run;
    info.failures = job.outcome.result.failures;
    info.violations = job.outcome.result.violations;
  }
  return info;
}

// -- job execution (pool worker threads) -------------------------------------

void Server::append_job_record_locked(Job& job, std::string record) {
  if (job.log.size() >= kMaxJobLog) {
    metrics_.counter("serve.stream_records_dropped").inc();
    return;
  }
  metrics_.counter("serve.stream_records").inc();
  job.log.push_back(std::move(record));
}

namespace {

std::string state_record(std::uint64_t id, JobState state,
                         const std::string& error) {
  json::Value v = json::Value::make_object();
  v.add("schema", json::Value::make_string("jsi.serve.job.v1"));
  v.add("job", json::Value::make_number(static_cast<double>(id)));
  v.add("state", json::Value::make_string(to_string(state)));
  if (!error.empty()) v.add("error", json::Value::make_string(error));
  return json::to_text(v, 0);
}

}  // namespace

void Server::worker_loop() {
  for (;;) {
    std::unique_lock<std::mutex> lk(mu_);
    cv_.wait(lk, [&] { return stop_workers_ || !queue_.empty(); });
    if (queue_.empty()) {
      if (stop_workers_) return;
      continue;
    }
    const std::uint64_t id = queue_.front();
    queue_.pop_front();
    metrics_.gauge("serve.queue_depth")
        .set(static_cast<double>(queue_.size()));
    Job& job = *jobs_.at(id);
    if (job.state != JobState::Queued) continue;  // cancelled while queued
    job.state = JobState::Running;
    job.started_at = std::chrono::steady_clock::now();
    ++running_;
    metrics_.histogram("serve.queue_wait_ms")
        .observe(std::chrono::duration<double, std::milli>(job.started_at -
                                                           job.submitted_at)
                     .count());
    append_job_record_locked(job, state_record(id, JobState::Running, ""));
    lk.unlock();
    wake();

    if (cfg_.test_job_gate) cfg_.test_job_gate(id);
    run_job(job);
    wake();
  }
}

void Server::run_job(Job& job) {
  // The job runs through the exact scenario::run_scenario() entry point
  // `jsi run` uses — identical lowering, execution and artifact
  // rendering, which is what makes socket-submitted artifacts
  // byte-identical to the CLI path.
  scenario::RunOptions opt;
  opt.shards = job.shards;
  opt.cancel = job.cancel.get();

  LineSinkBuf buf([this, &job](std::string line) {
    {
      std::lock_guard<std::mutex> lk(mu_);
      append_job_record_locked(job, std::move(line));
    }
    wake();
  });
  std::ostream stream_sink(&buf);
  if (job.stream) {
    scenario::TelemetrySpec t = job.spec.telemetry;
    t.interval_ms = cfg_.telemetry_interval_ms;
    opt.telemetry = t;
    opt.telemetry_sink = &stream_sink;
  }

  bool failed = false;
  std::string error;
  scenario::ScenarioOutcome outcome;
  try {
    outcome = scenario::run_scenario(job.spec, opt);
  } catch (const std::exception& e) {
    failed = true;
    error = e.what();
  }

  std::lock_guard<std::mutex> lk(mu_);
  --running_;
  if (failed) {
    job.state = JobState::Failed;
    job.error = error;
    metrics_.counter("serve.jobs_failed").inc();
  } else if (!outcome.result.complete) {
    // The only way a serve job stops early is its cancel flag (no
    // max_chunks / range restrictions come in over the wire).
    job.state = JobState::Cancelled;
    metrics_.counter("serve.jobs_cancelled").inc();
  } else {
    job.state = JobState::Done;
    job.outcome = std::move(outcome);
    metrics_.counter("serve.jobs_completed").inc();
  }
  metrics_.histogram("serve.job_wall_ms")
      .observe(std::chrono::duration<double, std::milli>(
                   std::chrono::steady_clock::now() - job.started_at)
                   .count());
  append_job_record_locked(job, state_record(job.id, job.state, job.error));
}

// -- verb handlers (poll-loop thread) ----------------------------------------

json::Value Server::verb_submit(const json::Value& req) {
  const json::Value* text = find_member(req, "scenario_text");
  if (text == nullptr || !text->is_string()) {
    return error_response("bad_request",
                          "submit needs a scenario_text string member");
  }
  scenario::ScenarioSpec spec;
  try {
    spec = scenario::parse_scenario(text->str);
  } catch (const std::exception& e) {
    std::lock_guard<std::mutex> lk(mu_);
    metrics_.counter("serve.rejected_invalid").inc();
    return error_response("invalid_scenario", e.what());
  }

  auto job = std::make_unique<Job>();
  job->name = spec.name;
  job->spec = std::move(spec);
  if (const auto shards = u64_or_nothing(req, "shards")) {
    job->shards = static_cast<std::size_t>(*shards);
  }
  job->stream = bool_or(req, "stream", false);
  job->submitted_at = std::chrono::steady_clock::now();

  std::lock_guard<std::mutex> lk(mu_);
  if (draining_) {
    metrics_.counter("serve.rejected_draining").inc();
    return error_response("draining",
                          "server is draining and admits no new jobs");
  }
  if (queue_.size() >= cfg_.max_queue) {
    metrics_.counter("serve.rejected_queue_full").inc();
    return error_response(
        "queue_full", "job queue is full (" + std::to_string(cfg_.max_queue) +
                          " pending); retry later");
  }
  const std::uint64_t id = next_job_id_++;
  job->id = id;
  append_job_record_locked(*job, state_record(id, JobState::Queued, ""));
  const std::size_t position = queue_.size();
  queue_.push_back(id);
  jobs_.emplace(id, std::move(job));
  metrics_.counter("serve.jobs_submitted").inc();
  metrics_.gauge("serve.queue_depth").set(static_cast<double>(queue_.size()));
  if (queue_.size() > static_cast<std::size_t>(
                          metrics_.gauge("serve.queue_depth_peak").value())) {
    metrics_.gauge("serve.queue_depth_peak")
        .set(static_cast<double>(queue_.size()));
  }
  cv_.notify_one();

  json::Value v = ok_response();
  v.add("job", json::Value::make_number(static_cast<double>(id)));
  v.add("state", json::Value::make_string(to_string(JobState::Queued)));
  v.add("position", json::Value::make_number(static_cast<double>(position)));
  return v;
}

namespace {

void add_job_members(json::Value& v, const JobInfo& info) {
  v.add("job", json::Value::make_number(static_cast<double>(info.id)));
  v.add("name", json::Value::make_string(info.name));
  v.add("state", json::Value::make_string(to_string(info.state)));
  if (info.state == JobState::Done) {
    v.add("units", json::Value::make_number(static_cast<double>(info.units)));
    v.add("violations",
          json::Value::make_number(static_cast<double>(info.violations)));
    v.add("failures",
          json::Value::make_number(static_cast<double>(info.failures)));
  }
  if (!info.error.empty()) {
    v.add("error_text", json::Value::make_string(info.error));
  }
}

}  // namespace

json::Value Server::verb_status(const json::Value& req) {
  std::lock_guard<std::mutex> lk(mu_);
  if (const auto id = u64_or_nothing(req, "job")) {
    const auto it = jobs_.find(*id);
    if (it == jobs_.end()) {
      return error_response("unknown_job",
                            "no job " + std::to_string(*id));
    }
    json::Value v = ok_response();
    add_job_members(v, info_locked(*it->second));
    return v;
  }
  json::Value v = ok_response();
  json::Value server = json::Value::make_object();
  server.add("state",
             json::Value::make_string(draining_ ? "draining" : "serving"));
  server.add("pool", json::Value::make_number(static_cast<double>(cfg_.pool)));
  server.add("queue_depth",
             json::Value::make_number(static_cast<double>(queue_.size())));
  server.add("running",
             json::Value::make_number(static_cast<double>(running_)));
  server.add("jobs", json::Value::make_number(static_cast<double>(jobs_.size())));
  v.add("server", std::move(server));
  json::Value list = json::Value::make_array();
  for (const auto& [id, job] : jobs_) {
    json::Value e = json::Value::make_object();
    add_job_members(e, info_locked(*job));
    list.push(std::move(e));
  }
  v.add("jobs", std::move(list));
  return v;
}

json::Value Server::verb_result(const json::Value& req) {
  const auto id = u64_or_nothing(req, "job");
  if (!id) return error_response("bad_request", "result needs a job id");
  std::lock_guard<std::mutex> lk(mu_);
  const auto it = jobs_.find(*id);
  if (it == jobs_.end()) {
    return error_response("unknown_job", "no job " + std::to_string(*id));
  }
  const Job& job = *it->second;
  switch (job.state) {
    case JobState::Queued:
    case JobState::Running:
      return error_response("not_finished",
                            "job " + std::to_string(*id) + " is " +
                                to_string(job.state));
    case JobState::Failed:
      return error_response("job_failed", job.error);
    case JobState::Cancelled:
      return error_response("job_cancelled",
                            "job " + std::to_string(*id) + " was cancelled");
    case JobState::Done:
      break;
  }
  json::Value v = ok_response();
  add_job_members(v, info_locked(job));
  v.add("report", json::Value::make_string(job.outcome.report_text));
  v.add("metrics", json::Value::make_string(job.outcome.metrics_json));
  v.add("events", json::Value::make_string(job.outcome.events_jsonl));
  v.add("yield", json::Value::make_string(job.outcome.yield_json));
  return v;
}

json::Value Server::verb_cancel(const json::Value& req) {
  const auto id = u64_or_nothing(req, "job");
  if (!id) return error_response("bad_request", "cancel needs a job id");
  std::lock_guard<std::mutex> lk(mu_);
  const auto it = jobs_.find(*id);
  if (it == jobs_.end()) {
    return error_response("unknown_job", "no job " + std::to_string(*id));
  }
  Job& job = *it->second;
  if (job.state == JobState::Queued) {
    job.state = JobState::Cancelled;
    for (auto qit = queue_.begin(); qit != queue_.end(); ++qit) {
      if (*qit == *id) {
        queue_.erase(qit);
        break;
      }
    }
    metrics_.gauge("serve.queue_depth")
        .set(static_cast<double>(queue_.size()));
    metrics_.counter("serve.jobs_cancelled").inc();
    append_job_record_locked(job, state_record(*id, JobState::Cancelled, ""));
  } else if (job.state == JobState::Running) {
    // Cooperative: the campaign runner polls this flag at its next chunk
    // boundary; the worker marks the job Cancelled when the run returns.
    job.cancel->store(true, std::memory_order_relaxed);
  }
  json::Value v = ok_response();
  v.add("job", json::Value::make_number(static_cast<double>(*id)));
  v.add("state", json::Value::make_string(to_string(job.state)));
  return v;
}

json::Value Server::verb_shutdown(const json::Value& req) {
  const std::string mode = string_or(req, "mode", "drain");
  {
    std::lock_guard<std::mutex> lk(mu_);
    draining_ = true;
    if (mode == "now") {
      cancel_all_ = true;
      for (const std::uint64_t id : queue_) {
        Job& job = *jobs_.at(id);
        job.state = JobState::Cancelled;
        metrics_.counter("serve.jobs_cancelled").inc();
        append_job_record_locked(job,
                                 state_record(id, JobState::Cancelled, ""));
      }
      queue_.clear();
      metrics_.gauge("serve.queue_depth").set(0.0);
      for (auto& [id, job] : jobs_) {
        if (job->state == JobState::Running) {
          job->cancel->store(true, std::memory_order_relaxed);
        }
      }
    }
  }
  cv_.notify_all();
  wake();
  json::Value v = ok_response();
  v.add("draining", json::Value::make_bool(true));
  return v;
}

json::Value Server::verb_subscribe(Connection& c, const json::Value& req) {
  const auto id = u64_or_nothing(req, "job");
  if (!id) return error_response("bad_request", "subscribe needs a job id");
  std::lock_guard<std::mutex> lk(mu_);
  const auto it = jobs_.find(*id);
  if (it == jobs_.end()) {
    return error_response("unknown_job", "no job " + std::to_string(*id));
  }
  c.streaming = true;
  c.stream_job = *id;
  c.stream_pos = 0;  // replay the backlog, then follow live
  json::Value v = ok_response();
  v.add("job", json::Value::make_number(static_cast<double>(*id)));
  v.add("backlog", json::Value::make_number(
                       static_cast<double>(it->second->log.size())));
  return v;
}

json::Value Server::dispatch(Connection& c, const json::Value& req) {
  const std::string verb = string_or(req, "verb", "");
  if (verb == "submit") return verb_submit(req);
  if (verb == "status") return verb_status(req);
  if (verb == "result") return verb_result(req);
  if (verb == "cancel") return verb_cancel(req);
  if (verb == "shutdown") return verb_shutdown(req);
  if (verb == "subscribe") return verb_subscribe(c, req);
  return error_response("bad_request", verb.empty()
                                           ? "request has no verb"
                                           : "unknown verb \"" + verb + "\"");
}

// -- the poll loop -----------------------------------------------------------

void Server::send_frame(Connection& c, const std::string& frame) {
  c.out += frame;
  {
    std::lock_guard<std::mutex> lk(mu_);
    metrics_.counter("serve.frames_tx").inc();
  }
}

void Server::flush_connection(Connection& c) {
  while (!c.out.empty()) {
    const ssize_t n = ::send(c.fd, c.out.data(), c.out.size(), MSG_NOSIGNAL);
    if (n > 0) {
      c.out.erase(0, static_cast<std::size_t>(n));
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return;
    c.dead = true;  // peer vanished mid-write
    return;
  }
  if (c.closing) c.dead = true;
}

void Server::handle_request(Connection& c, const std::string& payload) {
  {
    std::lock_guard<std::mutex> lk(mu_);
    metrics_.counter("serve.frames_rx").inc();
  }
  std::string err;
  const std::optional<json::Value> req = parse_message(payload, &err);
  json::Value resp =
      req ? dispatch(c, *req) : error_response("bad_request", err);
  send_frame(c, encode_frame(resp));
}

void Server::handle_readable(int fd) {
  const auto it = conns_.find(fd);
  if (it == conns_.end()) return;
  Connection& c = *it->second;
  char buf[65536];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n > 0) {
      c.reader.feed(std::string_view(buf, static_cast<std::size_t>(n)));
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    c.dead = true;  // EOF or hard error: peer is gone
    return;
  }
  while (auto payload = c.reader.next()) {
    handle_request(c, *payload);
  }
  if (c.reader.bad()) {
    // Framing is lost for good: report once, flush, close.
    {
      std::lock_guard<std::mutex> lk(mu_);
      metrics_.counter("serve.bad_frames").inc();
    }
    send_frame(c, encode_frame(error_response("bad_frame", c.reader.error())));
    c.closing = true;
  }
  flush_connection(c);
}

void Server::accept_clients() {
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) return;  // EAGAIN or transient error: try again next poll
    set_nonblocking(fd);
    auto conn = std::make_unique<Connection>();
    conn->fd = fd;
    conns_.emplace(fd, std::move(conn));
    std::lock_guard<std::mutex> lk(mu_);
    metrics_.counter("serve.clients_accepted").inc();
  }
}

void Server::flush_streams_locked() {
  for (auto& [fd, c] : conns_) {
    if (!c->streaming || c->dead) continue;
    const auto it = jobs_.find(c->stream_job);
    if (it == jobs_.end()) continue;
    const Job& job = *it->second;
    while (c->stream_pos < job.log.size()) {
      c->out += encode_frame(job.log[c->stream_pos++]);
      metrics_.counter("serve.frames_tx").inc();
    }
  }
}

void Server::drop_connection(int fd) {
  const auto it = conns_.find(fd);
  if (it == conns_.end()) return;
  ::close(fd);
  conns_.erase(it);
  std::lock_guard<std::mutex> lk(mu_);
  metrics_.counter("serve.clients_closed").inc();
}

void Server::serve() {
  using clock = std::chrono::steady_clock;
  std::optional<clock::time_point> flush_deadline;

  for (;;) {
    std::vector<pollfd> fds;
    fds.push_back({wake_rd_, POLLIN, 0});
    fds.push_back({listen_fd_, POLLIN, 0});
    for (const auto& [fd, c] : conns_) {
      short ev = POLLIN;
      if (!c->out.empty()) ev |= POLLOUT;
      fds.push_back({fd, ev, 0});
    }

    const int timeout = flush_deadline ? 20 : -1;
    const int rc = ::poll(fds.data(), static_cast<nfds_t>(fds.size()), timeout);
    if (rc < 0 && errno != EINTR) sys_fail("poll");

    // Self-pipe: worker wakeups ('W') and signal-handler drains ('D').
    if (fds[0].revents & POLLIN) {
      char buf[256];
      ssize_t n;
      bool drain = false;
      while ((n = ::read(wake_rd_, buf, sizeof(buf))) > 0) {
        for (ssize_t i = 0; i < n; ++i) {
          if (buf[i] == 'D') drain = true;
        }
      }
      if (drain) {
        std::lock_guard<std::mutex> lk(mu_);
        draining_ = true;
      }
    }

    if (fds[1].revents & POLLIN) accept_clients();

    // Client I/O. Collect fds first: handlers may mark connections dead.
    for (std::size_t i = 2; i < fds.size(); ++i) {
      const int fd = fds[i].fd;
      const auto it = conns_.find(fd);
      if (it == conns_.end()) continue;
      if (fds[i].revents & (POLLERR | POLLHUP | POLLNVAL)) {
        it->second->dead = true;
        continue;
      }
      if (fds[i].revents & POLLIN) handle_readable(fd);
      if (fds[i].revents & POLLOUT) flush_connection(*it->second);
    }

    // Push freshly appended job records to subscribers, then try to get
    // the bytes out now instead of waiting for the next POLLOUT round.
    {
      std::lock_guard<std::mutex> lk(mu_);
      flush_streams_locked();
    }
    for (auto& [fd, c] : conns_) {
      if (!c->dead && !c->out.empty()) flush_connection(*c);
    }

    // Sweep dead connections.
    std::vector<int> dead;
    for (const auto& [fd, c] : conns_) {
      if (c->dead) dead.push_back(fd);
    }
    for (const int fd : dead) drop_connection(fd);

    // Drain exit: every admitted job has finished; give pending client
    // writes a short grace window to flush, then leave the loop.
    bool drained;
    {
      std::lock_guard<std::mutex> lk(mu_);
      drained = draining_ && queue_.empty() && running_ == 0;
    }
    if (drained) {
      if (!flush_deadline) {
        flush_deadline = clock::now() + std::chrono::seconds(2);
      }
      bool pending = false;
      for (const auto& [fd, c] : conns_) {
        if (!c->out.empty()) pending = true;
      }
      if (!pending || clock::now() >= *flush_deadline) break;
    }
  }

  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_workers_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : pool_) {
    if (t.joinable()) t.join();
  }
  pool_.clear();
  for (auto& [fd, c] : conns_) ::close(fd);
  conns_.clear();
  ::close(listen_fd_);
  listen_fd_ = -1;
  if (!cfg_.unix_path.empty()) {
    std::error_code ec;
    std::filesystem::remove(cfg_.unix_path, ec);
  }
}

}  // namespace jsi::serve
