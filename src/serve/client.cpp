#include "serve/client.hpp"

#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <utility>

namespace jsi::serve {

namespace json = jsi::util::json;

namespace {

[[noreturn]] void sys_fail(const std::string& what) {
  throw std::runtime_error("serve client: " + what + ": " +
                           std::strerror(errno));
}

}  // namespace

Client::~Client() { close(); }

Client::Client(Client&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)), reader_(std::move(other.reader_)) {}

Client& Client::operator=(Client&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = std::exchange(other.fd_, -1);
    reader_ = std::move(other.reader_);
  }
  return *this;
}

void Client::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Client Client::connect_unix(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    throw std::runtime_error("serve client: unix socket path too long: " +
                             path);
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) sys_fail("socket(AF_UNIX)");
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    const int err = errno;
    ::close(fd);
    errno = err;
    sys_fail("connect(" + path + ")");
  }
  return Client(fd);
}

Client Client::connect_tcp(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) sys_fail("socket(AF_INET)");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    const int err = errno;
    ::close(fd);
    errno = err;
    sys_fail("connect(127.0.0.1:" + std::to_string(port) + ")");
  }
  return Client(fd);
}

void Client::send(const json::Value& req) {
  if (fd_ < 0) throw std::runtime_error("serve client: not connected");
  const std::string frame = encode_frame(req);
  std::size_t off = 0;
  while (off < frame.size()) {
    const ssize_t n =
        ::send(fd_, frame.data() + off, frame.size() - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      sys_fail("send");
    }
    off += static_cast<std::size_t>(n);
  }
}

std::optional<std::string> Client::read_frame() {
  if (fd_ < 0) throw std::runtime_error("serve client: not connected");
  for (;;) {
    if (auto payload = reader_.next()) return payload;
    if (reader_.bad()) {
      throw std::runtime_error("serve client: " + reader_.error());
    }
    char buf[65536];
    const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      sys_fail("recv");
    }
    if (n == 0) return std::nullopt;  // EOF
    reader_.feed(std::string_view(buf, static_cast<std::size_t>(n)));
  }
}

json::Value Client::request(const json::Value& req) {
  send(req);
  std::optional<std::string> payload = read_frame();
  if (!payload) {
    throw std::runtime_error(
        "serve client: connection closed before a response arrived");
  }
  std::string err;
  std::optional<json::Value> resp = parse_message(*payload, &err);
  if (!resp) {
    throw std::runtime_error("serve client: bad response: " + err);
  }
  return std::move(*resp);
}

}  // namespace jsi::serve
