#ifndef JSI_SERVE_CLIENT_HPP
#define JSI_SERVE_CLIENT_HPP

#include <cstdint>
#include <optional>
#include <string>

#include "serve/protocol.hpp"

namespace jsi::serve {

/// Blocking client connection to a `jsi serve` daemon — the transport
/// behind the `jsi submit`/`status`/`result`/`cancel`/`shutdown` CLI
/// verbs and the serve test-suite. One Client is one socket; it is not
/// thread-safe (the protocol is strictly request/response per
/// connection, except after subscribe, when the connection becomes a
/// stream read with read_frame()).
class Client {
 public:
  Client() = default;
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;
  Client(Client&& other) noexcept;
  Client& operator=(Client&& other) noexcept;

  /// Connect to a unix-domain socket. Throws std::runtime_error.
  static Client connect_unix(const std::string& path);
  /// Connect to 127.0.0.1:port. Throws std::runtime_error.
  static Client connect_tcp(std::uint16_t port);

  bool connected() const { return fd_ >= 0; }
  void close();

  /// Send one request object and block for the matching response.
  /// Throws std::runtime_error on I/O errors, EOF mid-response, or a
  /// framing violation from the server.
  util::json::Value request(const util::json::Value& req);

  /// Send one request without waiting for a response (drain tests).
  void send(const util::json::Value& req);

  /// Block for the next frame payload; nullopt on clean EOF. Throws on
  /// I/O errors or framing violations.
  std::optional<std::string> read_frame();

 private:
  explicit Client(int fd) : fd_(fd) {}

  int fd_ = -1;
  FrameReader reader_;
};

}  // namespace jsi::serve

#endif  // JSI_SERVE_CLIENT_HPP
