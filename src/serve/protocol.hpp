#ifndef JSI_SERVE_PROTOCOL_HPP
#define JSI_SERVE_PROTOCOL_HPP

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "util/json.hpp"

namespace jsi::serve {

// Wire format of the campaign service: length-prefixed JSON frames on a
// byte stream (unix or TCP socket). One frame is
//
//   <decimal payload length> '\n' <payload bytes>
//
// with the length in plain ASCII digits (no sign, no leading zeros
// required) so a captured stream stays human-inspectable. The payload is
// one complete JSON document: a request object ({"verb":"submit",...}),
// a response object ({"ok":true,...} / {"ok":false,"error":code,...}),
// or a pushed JSONL record on a subscribed connection. Framing errors
// (non-digit length, oversized frame, absurdly long length field) are
// unrecoverable — once the byte stream's framing is lost there is no
// resynchronization point — so the reader latches into an error state
// and the server closes the connection after sending one bad_frame
// error.

/// Hard payload ceiling. Large enough for any scenario document or
/// rendered artifact bundle in the repo; small enough that one broken
/// client cannot make the daemon buffer gigabytes.
inline constexpr std::size_t kMaxFramePayload = 64u << 20;

/// Upper bound on the length field's digit count ("67108864" is 8; a
/// longer run of digits can only be garbage or an over-limit frame).
inline constexpr std::size_t kMaxLengthDigits = 10;

/// Render one frame: length prefix + '\n' + payload. Throws
/// std::invalid_argument when payload is empty or over the ceiling.
std::string encode_frame(std::string_view payload);

/// Encode a JSON document as a frame (compact one-line rendering).
std::string encode_frame(const util::json::Value& v);

/// Incremental frame decoder for a nonblocking byte stream: feed() the
/// bytes as they arrive, next() pops complete payloads in order. After a
/// framing violation bad() is true, error() names it, and next() returns
/// nullopt forever.
class FrameReader {
 public:
  void feed(std::string_view data);
  std::optional<std::string> next();
  bool bad() const { return !err_.empty(); }
  const std::string& error() const { return err_; }

 private:
  std::string buf_;
  std::string err_;
};

// -- request/response helpers ------------------------------------------------

/// {"ok":true} under construction — verbs add their payload members.
util::json::Value ok_response();

/// {"ok":false,"error":code,"message":message}. `code` is the typed,
/// machine-matchable field (queue_full, draining, unknown_job,
/// not_finished, invalid_scenario, bad_request, bad_frame); `message` is
/// the human diagnostic.
util::json::Value error_response(std::string code, std::string message);

/// Parse one frame payload into a JSON object. Returns nullopt (and
/// fills `error`) when the payload is not valid JSON or not an object.
std::optional<util::json::Value> parse_message(std::string_view payload,
                                               std::string* error);

/// Object member access that tolerates absence: nullptr when `v` is not
/// an object or has no member `key`.
const util::json::Value* find_member(const util::json::Value& v,
                                     const std::string& key);

/// String member or fallback.
std::string string_or(const util::json::Value& v, const std::string& key,
                      const std::string& fallback);

/// Non-negative integer member; nullopt when absent or not an exact
/// non-negative integer.
std::optional<std::uint64_t> u64_or_nothing(const util::json::Value& v,
                                            const std::string& key);

/// Bool member or fallback.
bool bool_or(const util::json::Value& v, const std::string& key,
             bool fallback);

}  // namespace jsi::serve

#endif  // JSI_SERVE_PROTOCOL_HPP
