#ifndef JSI_SERVE_SERVER_HPP
#define JSI_SERVE_SERVER_HPP

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "obs/registry.hpp"
#include "scenario/run.hpp"
#include "scenario/spec.hpp"
#include "serve/protocol.hpp"

namespace jsi::serve {

/// Lifecycle of one submitted campaign job.
enum class JobState { Queued, Running, Done, Failed, Cancelled };
const char* to_string(JobState s);

/// Daemon configuration. Exactly one of `unix_path` / `use_tcp` selects
/// the listening transport.
struct ServerConfig {
  /// Bind a unix-domain stream socket here (non-empty wins over TCP).
  /// Any stale socket file is unlinked before binding.
  std::string unix_path;
  /// Bind TCP on 127.0.0.1:`tcp_port` instead; 0 picks an ephemeral
  /// port, readable from Server::port() after start().
  bool use_tcp = false;
  std::uint16_t tcp_port = 0;

  /// Campaign worker threads draining the job queue. Each runs one job
  /// at a time through the exact same scenario::run_scenario() path the
  /// `jsi run` CLI uses — which is the whole parity argument.
  std::size_t pool = 1;
  /// Bounded pending-job queue (jobs admitted but not yet running).
  /// Submits past this depth are rejected with the typed `queue_full`
  /// error: back-pressure instead of unbounded memory.
  std::size_t max_queue = 16;

  /// Per-job telemetry heartbeat period for streamed jobs.
  std::uint64_t telemetry_interval_ms = 250;

  /// Test instrumentation: invoked by the pool worker right after a job
  /// enters Running and before its campaign executes. Lets the suite
  /// hold a job mid-flight deterministically (queue-full, cancel and
  /// drain tests). Never set in production.
  std::function<void(std::uint64_t job_id)> test_job_gate;
};

/// One job's externally visible summary (returned under the status verb
/// and by Server::job_info for tests).
struct JobInfo {
  std::uint64_t id = 0;
  std::string name;
  JobState state = JobState::Queued;
  std::string error;           ///< failed jobs: the exception text
  std::uint64_t units = 0;     ///< done jobs: units folded
  std::uint64_t failures = 0;  ///< done jobs: failed units
  std::uint64_t violations = 0;
};

/// The `jsi serve` campaign daemon: a single-threaded poll loop owning
/// the listening socket and every client connection, plus a fixed pool
/// of campaign worker threads draining a bounded FIFO job queue. The
/// loop speaks the length-prefixed JSON protocol (serve/protocol.hpp)
/// with submit / status / result / cancel / shutdown / subscribe verbs;
/// workers execute jobs through scenario::run_scenario(), so a job's
/// report/metrics/events/yield artifacts are byte-identical to what
/// `jsi run` produces for the same scenario text (pinned by the serve
/// parity suite).
///
/// Threading: all mutable state (jobs, queue, clients' stream cursors,
/// metrics) lives behind one mutex; workers wake the poll loop through a
/// self-pipe whenever a job changes state or emits a telemetry
/// heartbeat, and the loop pushes the new JSONL records to subscribed
/// clients. Cancellation is cooperative (the campaign runner polls the
/// job's flag at chunk boundaries); drain (SIGTERM or the shutdown verb)
/// stops admitting jobs, finishes everything queued and running, flushes
/// client buffers, then returns from serve().
class Server {
 public:
  explicit Server(ServerConfig cfg);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Bind + listen + spawn the worker pool. Throws std::runtime_error on
  /// socket errors.
  void start();

  /// Run the poll loop on the calling thread until a drain completes.
  void serve();

  /// Request a graceful drain from any thread (the shutdown verb's
  /// equivalent): stop admitting submits, finish queued + running jobs,
  /// flush, return from serve().
  void request_drain();

  /// Async-signal-safe drain trigger for SIGTERM handlers: only writes
  /// one byte to the self-pipe.
  void signal_drain() noexcept;

  /// Bound TCP port (after start(); 0 for unix transport).
  std::uint16_t port() const { return bound_port_; }

  /// Snapshot of the serve.* metrics registry.
  obs::Registry metrics_snapshot() const;

  /// Snapshot of one job's summary; nullopt for unknown ids.
  std::optional<JobInfo> job_info(std::uint64_t id) const;

 private:
  struct Job;
  struct Connection;

  void worker_loop();
  void run_job(Job& job);
  void poll_once(int timeout_ms);
  void accept_clients();
  void handle_readable(int fd);
  void handle_request(Connection& c, const std::string& payload);
  util::json::Value dispatch(Connection& c, const util::json::Value& req);
  util::json::Value verb_submit(const util::json::Value& req);
  util::json::Value verb_status(const util::json::Value& req);
  util::json::Value verb_result(const util::json::Value& req);
  util::json::Value verb_cancel(const util::json::Value& req);
  util::json::Value verb_shutdown(const util::json::Value& req);
  util::json::Value verb_subscribe(Connection& c,
                                   const util::json::Value& req);
  void send_frame(Connection& c, const std::string& frame);
  void flush_connection(Connection& c);
  void flush_streams_locked();
  void drop_connection(int fd);
  void append_job_record_locked(Job& job, std::string record);
  void wake() noexcept;
  JobInfo info_locked(const Job& job) const;

  ServerConfig cfg_;
  int listen_fd_ = -1;
  int wake_rd_ = -1;
  int wake_wr_ = -1;
  std::uint16_t bound_port_ = 0;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::map<std::uint64_t, std::unique_ptr<Job>> jobs_;
  std::deque<std::uint64_t> queue_;
  std::map<int, std::unique_ptr<Connection>> conns_;
  std::uint64_t next_job_id_ = 1;
  std::size_t running_ = 0;
  bool draining_ = false;
  bool cancel_all_ = false;
  bool stop_workers_ = false;
  obs::Registry metrics_;

  std::vector<std::thread> pool_;
};

}  // namespace jsi::serve

#endif  // JSI_SERVE_SERVER_HPP
