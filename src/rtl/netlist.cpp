#include "rtl/netlist.hpp"

#include <stdexcept>

namespace jsi::rtl {

NetId Netlist::new_net(const std::string& net_name) {
  const NetId id = static_cast<NetId>(net_names_.size());
  net_names_.push_back(net_name);
  drivers_.push_back(-1);
  if (!net_name.empty()) by_name_[net_name] = id;
  return id;
}

NetId Netlist::add_input(const std::string& net_name) {
  const NetId id = new_net(net_name);
  inputs_.push_back(id);
  return id;
}

NetId Netlist::add_net(const std::string& net_name) {
  return new_net(net_name);
}

NetId Netlist::add_gate(GateKind kind, const std::vector<NetId>& ins,
                        const std::string& net_name) {
  const NetId out = new_net(net_name);
  add_gate_driving(out, kind, ins, net_name);
  return out;
}

void Netlist::add_gate_driving(NetId out, GateKind kind,
                               const std::vector<NetId>& ins,
                               const std::string& g_name) {
  if (static_cast<int>(ins.size()) != gate_arity(kind)) {
    throw std::invalid_argument(std::string("gate ") +
                                std::string(gate_name(kind)) +
                                ": wrong input count");
  }
  if (out >= net_names_.size()) throw std::out_of_range("unknown output net");
  if (drivers_[out] != -1) {
    throw std::logic_error("net already driven: " + net_names_[out]);
  }
  for (NetId in : ins) {
    if (in >= net_names_.size()) {
      throw std::out_of_range("gate input references unknown net");
    }
  }
  Gate g;
  g.kind = kind;
  for (std::size_t i = 0; i < ins.size(); ++i) g.in[i] = ins[i];
  g.out = out;
  g.name = g_name.empty() ? net_names_[out] : g_name;
  drivers_[out] = static_cast<int>(gates_.size());
  gates_.push_back(g);
}

void Netlist::set_output(NetId net, const std::string& port_name) {
  if (net >= net_names_.size()) throw std::out_of_range("unknown net");
  outputs_.emplace_back(port_name, net);
}

void Netlist::name_net(NetId net, const std::string& net_name) {
  if (net >= net_names_.size()) throw std::out_of_range("unknown net");
  net_names_[net] = net_name;
  by_name_[net_name] = net;
}

NetId Netlist::find_net(const std::string& net_name) const {
  return by_name_.at(net_name);
}

std::map<GateKind, std::size_t> Netlist::kind_histogram() const {
  std::map<GateKind, std::size_t> h;
  for (const auto& g : gates_) ++h[g.kind];
  return h;
}

std::vector<std::size_t> Netlist::topo_order() const {
  // DFS over combinational gates only; sequential outputs act as sources.
  enum class Mark : std::uint8_t { White, Grey, Black };
  std::vector<Mark> mark(gates_.size(), Mark::White);
  std::vector<std::size_t> order;
  order.reserve(gates_.size());

  // Iterative DFS to survive large netlists.
  struct Frame {
    std::size_t gate;
    int next_in;
  };
  for (std::size_t root = 0; root < gates_.size(); ++root) {
    if (is_sequential(gates_[root].kind) || mark[root] != Mark::White) continue;
    std::vector<Frame> stack{{root, 0}};
    mark[root] = Mark::Grey;
    while (!stack.empty()) {
      Frame& f = stack.back();
      const Gate& g = gates_[f.gate];
      if (f.next_in < gate_arity(g.kind)) {
        const NetId in = g.in[f.next_in++];
        const int drv = drivers_[in];
        if (drv >= 0 && !is_sequential(gates_[drv].kind)) {
          const auto d = static_cast<std::size_t>(drv);
          if (mark[d] == Mark::Grey) {
            throw std::logic_error("combinational cycle through net " +
                                   net_names_[in]);
          }
          if (mark[d] == Mark::White) {
            mark[d] = Mark::Grey;
            stack.push_back({d, 0});
          }
        }
      } else {
        mark[f.gate] = Mark::Black;
        order.push_back(f.gate);
        stack.pop_back();
      }
    }
  }
  return order;
}

void Netlist::validate() const {
  for (const auto& g : gates_) {
    for (int i = 0; i < gate_arity(g.kind); ++i) {
      if (g.in[i] == kNoNet) {
        throw std::logic_error("gate " + g.name + " has unconnected input");
      }
    }
  }
  (void)topo_order();  // throws on combinational cycles
}

}  // namespace jsi::rtl
