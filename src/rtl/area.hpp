#ifndef JSI_RTL_AREA_HPP
#define JSI_RTL_AREA_HPP

#include <map>
#include <string>

#include "rtl/gate.hpp"
#include "rtl/netlist.hpp"

namespace jsi::rtl {

/// NAND2-equivalent area model.
///
/// The paper's Table 7 reports boundary-scan cell cost in NAND-gate
/// equivalents from a Synopsys flow; we regenerate the same unit from the
/// structural netlists. The convention is the classic transistor-count one:
/// one NAND2 = 4 transistors, so NE(kind) = transistors(kind) / 4 for
/// static CMOS implementations:
///
///   INV 2T -> 0.5      BUF 4T -> 1.0      NAND2/NOR2 4T -> 1.0
///   AND2/OR2 6T -> 1.5 XOR2/XNOR2 10T -> 2.5
///   MUX2 (static) 10T -> 2.5
///   DFF (TG master-slave) 24T -> 6.0
///   LATCH 12T -> 3.0
///   ND macro (Fig 1, T1..T7) 7T -> 1.75
///   SD macro (Fig 2, 7T + 5-inv delay generator + NOR) 21T -> 5.25
double nand_equiv(GateKind k);

/// Total NAND2-equivalents of all gates in `nl`.
double nand_equiv(const Netlist& nl);

/// Per-kind breakdown: kind -> (count, total NE).
struct AreaLine {
  std::size_t count = 0;
  double nand_eq = 0.0;
};
std::map<GateKind, AreaLine> area_breakdown(const Netlist& nl);

/// Render an area breakdown as text (for reports and benches).
std::string format_area_report(const Netlist& nl);

}  // namespace jsi::rtl

#endif  // JSI_RTL_AREA_HPP
