#include "rtl/area.hpp"

#include <sstream>

#include "util/table.hpp"

namespace jsi::rtl {

double nand_equiv(GateKind k) {
  switch (k) {
    case GateKind::Const0:
    case GateKind::Const1: return 0.0;
    case GateKind::Buf: return 1.0;
    case GateKind::Inv: return 0.5;
    case GateKind::And2:
    case GateKind::Or2: return 1.5;
    case GateKind::Nand2:
    case GateKind::Nor2: return 1.0;
    case GateKind::Xor2:
    case GateKind::Xnor2: return 2.5;
    case GateKind::Mux2: return 2.5;
    case GateKind::Dff: return 6.0;
    case GateKind::LatchH: return 3.0;
    case GateKind::AnalogNd: return 1.75;
    case GateKind::AnalogSd: return 5.25;
  }
  return 0.0;
}

double nand_equiv(const Netlist& nl) {
  double total = 0.0;
  for (const auto& g : nl.gates()) total += nand_equiv(g.kind);
  return total;
}

std::map<GateKind, AreaLine> area_breakdown(const Netlist& nl) {
  std::map<GateKind, AreaLine> m;
  for (const auto& g : nl.gates()) {
    auto& line = m[g.kind];
    ++line.count;
    line.nand_eq += nand_equiv(g.kind);
  }
  return m;
}

std::string format_area_report(const Netlist& nl) {
  util::Table t({"cell", "count", "NAND-eq"});
  t.set_title("Area report: " + nl.name());
  double total = 0.0;
  std::size_t count = 0;
  for (const auto& [kind, line] : area_breakdown(nl)) {
    t.add_row({std::string(gate_name(kind)), std::to_string(line.count),
               util::fmt_double(line.nand_eq, 2)});
    total += line.nand_eq;
    count += line.count;
  }
  t.add_row({"TOTAL", std::to_string(count), util::fmt_double(total, 2)});
  std::ostringstream os;
  t.print(os);
  return os.str();
}

}  // namespace jsi::rtl
