#ifndef JSI_RTL_NETLIST_HPP
#define JSI_RTL_NETLIST_HPP

#include <array>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "rtl/gate.hpp"

namespace jsi::rtl {

/// Index of a net inside a Netlist.
using NetId = std::uint32_t;
inline constexpr NetId kNoNet = static_cast<NetId>(-1);

/// One gate instance: kind, up to three input nets, one output net.
struct Gate {
  GateKind kind;
  std::array<NetId, 3> in{kNoNet, kNoNet, kNoNet};
  NetId out = kNoNet;
  std::string name;
};

/// Structural gate-level netlist.
///
/// Every net is driven by at most one gate or declared as a primary input.
/// The netlist is the single source of truth for both functional
/// simulation (`NetlistSim`) and area accounting (`area.hpp`), so the
/// structural cell libraries in `jsi::bsc` stay consistent with the cost
/// figures they report.
class Netlist {
 public:
  explicit Netlist(std::string name = "top") : name_(std::move(name)) {}

  const std::string& name() const { return name_; }

  /// Declare a primary input net.
  NetId add_input(const std::string& net_name);

  /// Declare a floating net to be driven later by `add_gate_driving`
  /// (needed for feedback loops such as a toggle flip-flop).
  NetId add_net(const std::string& net_name = "");

  /// Add a gate; returns its output net. Input count must match
  /// `gate_arity(kind)`. For `Dff` the inputs are (d, clk); for `LatchH`,
  /// (d, en); for `Mux2`, (a, b, sel) with out = sel ? b : a.
  NetId add_gate(GateKind kind, const std::vector<NetId>& inputs,
                 const std::string& net_name = "");

  /// Add a gate whose output is the pre-declared net `out` (from
  /// `add_net`). Throws std::logic_error if `out` already has a driver.
  void add_gate_driving(NetId out, GateKind kind,
                        const std::vector<NetId>& inputs,
                        const std::string& gate_name = "");

  /// Mark `net` as a primary output under `port_name`.
  void set_output(NetId net, const std::string& port_name);

  /// Give `net` a (better) name; later names win.
  void name_net(NetId net, const std::string& net_name);

  std::size_t net_count() const { return net_names_.size(); }
  std::size_t gate_count() const { return gates_.size(); }

  const std::vector<Gate>& gates() const { return gates_; }
  const std::vector<NetId>& inputs() const { return inputs_; }
  const std::vector<std::pair<std::string, NetId>>& outputs() const {
    return outputs_;
  }

  /// Net name ("" if never named).
  const std::string& net_name(NetId id) const { return net_names_.at(id); }

  /// Resolve a named net; throws std::out_of_range if unknown.
  NetId find_net(const std::string& net_name) const;

  /// Driving gate index for `net`, or -1 for primary inputs / undriven.
  int driver_of(NetId net) const { return drivers_.at(net); }

  /// Count of gates per kind (for area and reporting).
  std::map<GateKind, std::size_t> kind_histogram() const;

  /// Verify structural sanity: every gate input driven (or a primary
  /// input), no combinational cycles (paths through Dff/LatchH break
  /// cycles). Throws std::logic_error describing the first violation.
  void validate() const;

  /// Combinational gates in dependency order (inputs before users).
  /// Sequential gates are excluded. Computed by validate-like DFS.
  std::vector<std::size_t> topo_order() const;

 private:
  NetId new_net(const std::string& net_name);

  std::string name_;
  std::vector<std::string> net_names_;
  std::vector<int> drivers_;  // per net: gate index or -1
  std::vector<Gate> gates_;
  std::vector<NetId> inputs_;
  std::vector<std::pair<std::string, NetId>> outputs_;
  std::map<std::string, NetId> by_name_;
};

}  // namespace jsi::rtl

#endif  // JSI_RTL_NETLIST_HPP
