#ifndef JSI_RTL_GATE_HPP
#define JSI_RTL_GATE_HPP

#include <cstdint>
#include <string_view>

namespace jsi::rtl {

/// Primitive cell kinds available to structural netlists.
///
/// The last two are *macro* cells for the analog sensor blocks of the
/// paper's Figs 1-2; they have no gate-level function here (the behavioural
/// models in `jsi::si` provide it) but carry transistor-derived area so the
/// Table 7 cost analysis can include them.
enum class GateKind : std::uint8_t {
  Const0,    ///< tie-low
  Const1,    ///< tie-high
  Buf,       ///< buffer
  Inv,       ///< inverter
  And2,      ///< 2-input AND
  Or2,       ///< 2-input OR
  Nand2,     ///< 2-input NAND
  Nor2,      ///< 2-input NOR
  Xor2,      ///< 2-input XOR
  Xnor2,     ///< 2-input XNOR
  Mux2,      ///< 2:1 mux, inputs (a, b, sel): out = sel ? b : a
  Dff,       ///< rising-edge D flip-flop, inputs (d, clk)
  LatchH,    ///< level-sensitive latch, transparent high, inputs (d, en)
  AnalogNd,  ///< noise-detector sense-amp macro (Fig 1), area only
  AnalogSd,  ///< skew-detector delay-gen + comparator macro (Fig 2), area only
};

/// Number of input pins a gate of kind `k` takes.
constexpr int gate_arity(GateKind k) {
  switch (k) {
    case GateKind::Const0:
    case GateKind::Const1: return 0;
    case GateKind::Buf:
    case GateKind::Inv:
    case GateKind::AnalogNd:
    case GateKind::AnalogSd: return 1;
    case GateKind::And2:
    case GateKind::Or2:
    case GateKind::Nand2:
    case GateKind::Nor2:
    case GateKind::Xor2:
    case GateKind::Xnor2:
    case GateKind::Dff:
    case GateKind::LatchH: return 2;
    case GateKind::Mux2: return 3;
  }
  return 0;
}

/// True for state-holding elements (evaluated on clock/enable, not in the
/// combinational levelization).
constexpr bool is_sequential(GateKind k) {
  return k == GateKind::Dff || k == GateKind::LatchH;
}

/// Human-readable kind name for netlist dumps.
constexpr std::string_view gate_name(GateKind k) {
  switch (k) {
    case GateKind::Const0: return "CONST0";
    case GateKind::Const1: return "CONST1";
    case GateKind::Buf: return "BUF";
    case GateKind::Inv: return "INV";
    case GateKind::And2: return "AND2";
    case GateKind::Or2: return "OR2";
    case GateKind::Nand2: return "NAND2";
    case GateKind::Nor2: return "NOR2";
    case GateKind::Xor2: return "XOR2";
    case GateKind::Xnor2: return "XNOR2";
    case GateKind::Mux2: return "MUX2";
    case GateKind::Dff: return "DFF";
    case GateKind::LatchH: return "LATCHH";
    case GateKind::AnalogNd: return "ND_MACRO";
    case GateKind::AnalogSd: return "SD_MACRO";
  }
  return "?";
}

}  // namespace jsi::rtl

#endif  // JSI_RTL_GATE_HPP
