#ifndef JSI_RTL_NETLIST_SIM_HPP
#define JSI_RTL_NETLIST_SIM_HPP

#include <string>
#include <vector>

#include "rtl/netlist.hpp"
#include "sim/scheduler.hpp"
#include "sim/time.hpp"
#include "util/logic.hpp"

namespace jsi::rtl {

/// Zero-delay levelized evaluation of a netlist's combinational part:
/// given values for primary inputs and sequential-element outputs (X
/// where unspecified, indexed by NetId), computes every combinational net
/// in topological order and returns the complete value map. Sequential
/// and analog-macro outputs are passed through untouched.
///
/// This is the oracle the event-driven `NetlistSim` is property-tested
/// against: after the event queue drains, both must agree on every net.
std::vector<util::Logic> evaluate_combinational(
    const Netlist& nl, std::vector<util::Logic> values);

/// Event-driven 4-state simulator for a `Netlist`.
///
/// Every combinational gate re-evaluates when one of its inputs changes and
/// drives its output after `gate_delay`. `Dff` samples D on the rising edge
/// of its clock net; because derived/gated clocks accumulate gate delays the
/// D input observed at the edge is the pre-edge value, exactly as in
/// hardware with positive hold margin. `LatchH` is transparent while its
/// enable is 1.
///
/// The analog macro kinds (`AnalogNd`, `AnalogSd`) have no logic function;
/// their outputs stay X (the behavioural sensors in `jsi::si` model them).
class NetlistSim {
 public:
  NetlistSim(sim::Scheduler& sched, const Netlist& nl,
             sim::Time gate_delay = 10 * sim::kPs);

  /// Schedule primary-input `net` to take value `v` after `delay`.
  void set_input(NetId net, util::Logic v, sim::Time delay = 0);

  /// By-name convenience for `set_input`.
  void set_input(const std::string& name, util::Logic v, sim::Time delay = 0);

  /// Force a net immediately (e.g. initialize flip-flop outputs) and
  /// propagate through the fanout with normal gate delays.
  void deposit(NetId net, util::Logic v);

  /// Current value of a net.
  util::Logic value(NetId net) const { return values_.at(net); }

  /// Current value of a named net.
  util::Logic value(const std::string& name) const;

  /// Snapshot of every net's current value (indexed by NetId).
  const std::vector<util::Logic>& values() const { return values_; }

  /// Run the scheduler until quiescent.
  void settle() { sched_->run_all(); }

  /// Number of gate evaluations performed (perf counter).
  std::uint64_t evals() const { return evals_; }

 private:
  void net_changed(NetId net, util::Logic old_v);
  void eval_comb(std::size_t gate_idx);
  void assign(NetId net, util::Logic v, sim::Time delay);
  util::Logic comb_value(const Gate& g) const;

  sim::Scheduler* sched_;
  const Netlist* nl_;
  sim::Time gate_delay_;
  std::vector<util::Logic> values_;
  std::vector<std::vector<std::size_t>> fanout_;  // net -> gate indices
  std::uint64_t evals_ = 0;
};

}  // namespace jsi::rtl

#endif  // JSI_RTL_NETLIST_SIM_HPP
