#include "rtl/netlist_sim.hpp"

#include <stdexcept>

namespace jsi::rtl {

using util::Logic;

namespace {

Logic eval_gate(GateKind kind, Logic a, Logic b, Logic c) {
  switch (kind) {
    case GateKind::Const0: return Logic::L0;
    case GateKind::Const1: return Logic::L1;
    case GateKind::Buf: return a;
    case GateKind::Inv: return util::l_not(a);
    case GateKind::And2: return util::l_and(a, b);
    case GateKind::Or2: return util::l_or(a, b);
    case GateKind::Nand2: return util::l_not(util::l_and(a, b));
    case GateKind::Nor2: return util::l_not(util::l_or(a, b));
    case GateKind::Xor2: return util::l_xor(a, b);
    case GateKind::Xnor2: return util::l_not(util::l_xor(a, b));
    case GateKind::Mux2: return util::l_mux(c, a, b);
    default: return Logic::X;
  }
}

}  // namespace

std::vector<Logic> evaluate_combinational(const Netlist& nl,
                                          std::vector<Logic> values) {
  if (values.size() != nl.net_count()) {
    throw std::invalid_argument("value map size != net count");
  }
  for (const std::size_t gi : nl.topo_order()) {
    const Gate& g = nl.gates()[gi];
    const auto in = [&](int i) {
      return g.in[i] == kNoNet ? Logic::X : values[g.in[i]];
    };
    values[g.out] = eval_gate(g.kind, in(0), in(1), in(2));
  }
  return values;
}

NetlistSim::NetlistSim(sim::Scheduler& sched, const Netlist& nl,
                       sim::Time gate_delay)
    : sched_(&sched), nl_(&nl), gate_delay_(gate_delay) {
  nl.validate();
  values_.assign(nl.net_count(), Logic::X);
  fanout_.assign(nl.net_count(), {});
  const auto& gates = nl.gates();
  for (std::size_t gi = 0; gi < gates.size(); ++gi) {
    const Gate& g = gates[gi];
    for (int i = 0; i < gate_arity(g.kind); ++i) {
      fanout_[g.in[i]].push_back(gi);
    }
    // Tie cells drive their constant from time zero.
    if (g.kind == GateKind::Const0) values_[g.out] = Logic::L0;
    if (g.kind == GateKind::Const1) values_[g.out] = Logic::L1;
  }
}

void NetlistSim::set_input(NetId net, Logic v, sim::Time delay) {
  sched_->schedule(delay, [this, net, v] {
    const Logic old = values_[net];
    if (old == v) return;
    values_[net] = v;
    net_changed(net, old);
  });
}

void NetlistSim::set_input(const std::string& name, Logic v, sim::Time delay) {
  set_input(nl_->find_net(name), v, delay);
}

void NetlistSim::deposit(NetId net, Logic v) {
  const Logic old = values_[net];
  if (old == v) return;
  values_[net] = v;
  net_changed(net, old);
}

util::Logic NetlistSim::value(const std::string& name) const {
  return values_.at(nl_->find_net(name));
}

Logic NetlistSim::comb_value(const Gate& g) const {
  const auto in = [&](int i) {
    return g.in[i] == kNoNet ? Logic::X : values_[g.in[i]];
  };
  return eval_gate(g.kind, in(0), in(1), in(2));
}

void NetlistSim::assign(NetId net, Logic v, sim::Time delay) {
  sched_->schedule(delay, [this, net, v] {
    const Logic old = values_[net];
    if (old == v) return;
    values_[net] = v;
    net_changed(net, old);
  });
}

void NetlistSim::eval_comb(std::size_t gate_idx) {
  const Gate& g = nl_->gates()[gate_idx];
  ++evals_;
  assign(g.out, comb_value(g), gate_delay_);
}

void NetlistSim::net_changed(NetId net, Logic old_v) {
  for (std::size_t gi : fanout_[net]) {
    const Gate& g = nl_->gates()[gi];
    switch (g.kind) {
      case GateKind::Dff:
        // Sample only on a clean rising edge of the clock pin.
        if (g.in[1] == net && old_v != Logic::L1 &&
            values_[net] == Logic::L1) {
          const Logic d = old_v == Logic::L0 ? values_[g.in[0]] : Logic::X;
          ++evals_;
          assign(g.out, d, gate_delay_);
        }
        break;
      case GateKind::LatchH: {
        const Logic en = values_[g.in[1]];
        if (en == Logic::L1) {
          // Transparent: follow D (also fires when EN itself rose).
          ++evals_;
          assign(g.out, values_[g.in[0]], gate_delay_);
        } else if (en != Logic::L0) {
          ++evals_;
          assign(g.out, Logic::X, gate_delay_);
        }
        break;
      }
      case GateKind::AnalogNd:
      case GateKind::AnalogSd:
        break;  // area-only macros
      default:
        eval_comb(gi);
        break;
    }
  }
}

}  // namespace jsi::rtl
