#ifndef JSI_BSC_OBSC_HPP
#define JSI_BSC_OBSC_HPP

#include <cstdint>

#include "jtag/cell.hpp"
#include "obs/events.hpp"
#include "si/detectors.hpp"
#include "si/waveform.hpp"

namespace jsi::bsc {

/// Observation Boundary-Scan Cell (paper Fig 9, Tables 3-4).
///
/// A receiving-side cell that embeds the Noise Detector (ND) and Skew
/// Detector (SD) sensors. During G-SITEST the sensors are enabled (CE=1)
/// and their sticky flip-flops latch any integrity violation seen on the
/// interconnect. During O-SITEST, Capture-DR loads the selected sensor
/// flip-flop into FF1 (`sel`=0, Table 4: SI=1 and ShiftDR=0) and the
/// subsequent Shift-DR reforms the chain and scans the flags out; the
/// ND/SD select toggles at Update-DR so two passes read both sensors.
///
/// Capture mux (Table 4):
///   SI | ShiftDR | sel | FF1 source
///    0 |    x    |  1  | pin (standard capture)
///    1 |    0    |  0  | ND or SD flip-flop (per nd_sd)
///    1 |    1    |  1  | scan chain (structural shift path)
class Obsc : public jtag::BoundaryCell {
 public:
  Obsc(si::NdParams nd, si::SdParams sd) : nd_(nd), sd_(sd) {}

  void capture(const jtag::CellCtl& c) override;
  bool shift_bit(bool tdi, const jtag::CellCtl& c) override;
  void update(const jtag::CellCtl& c) override;
  void reset() override;

  void set_parallel_in(util::Logic v) override { pin_ = v; }
  util::Logic parallel_out(const jtag::CellCtl& c) const override;

  /// Feed one receiving-end waveform to the sensors. `initial` is the
  /// wire's driven logic level before this bus transition; `expected` the
  /// level after it. Honors CE: with c.ce == false the sticky flags are
  /// untouched ("the captured data in their flip-flops remain unchanged").
  /// Takes a non-owning view so the batched bus path feeds arena/table
  /// storage straight to the sensors with no copies.
  void observe(si::WaveformView w, util::Logic initial,
               util::Logic expected, const jtag::CellCtl& c);

  const si::NdCell& nd() const { return nd_; }
  const si::SdCell& sd() const { return sd_; }

  bool ff1() const { return ff1_; }
  bool ff2() const { return ff2_; }

  /// Attach an observability sink; a DetectorFired record is reported at
  /// the moment a sticky flag transitions 0->1 (once per latch, not per
  /// observation). `wire`/`bus` identify this cell in the records.
  void set_sink(obs::Sink* sink, std::int64_t wire, std::int64_t bus = -1) {
    sink_ = sink;
    wire_id_ = wire;
    bus_id_ = bus;
  }

 private:
  void fire(const char* which);

  si::NdCell nd_;
  si::SdCell sd_;
  util::Logic pin_ = util::Logic::X;
  bool ff1_ = false;
  bool ff2_ = false;
  obs::Sink* sink_ = nullptr;
  std::int64_t wire_id_ = -1;
  std::int64_t bus_id_ = -1;
};

}  // namespace jsi::bsc

#endif  // JSI_BSC_OBSC_HPP
