#include "bsc/obsc.hpp"

namespace jsi::bsc {

void Obsc::capture(const jtag::CellCtl& c) {
  if (c.si) {
    // sel = 0 (Table 4, SI=1 & ShiftDR=0): present the selected sensor FF.
    ff1_ = c.nd_sd ? nd_.flag() : sd_.flag();
  } else {
    ff1_ = util::to_bool(pin_);
  }
}

bool Obsc::shift_bit(bool tdi, const jtag::CellCtl&) {
  // sel = 1 while ShiftDR: the chain is re-formed through FF1.
  const bool out = ff1_;
  ff1_ = tdi;
  return out;
}

void Obsc::update(const jtag::CellCtl&) { ff2_ = ff1_; }

void Obsc::reset() {
  ff1_ = false;
  ff2_ = false;
  nd_.clear();
  sd_.clear();
}

util::Logic Obsc::parallel_out(const jtag::CellCtl& c) const {
  return c.mode ? util::to_logic(ff2_) : pin_;
}

void Obsc::observe(si::WaveformView w, util::Logic initial,
                   util::Logic expected, const jtag::CellCtl& c) {
  nd_.set_enable(c.ce);
  sd_.set_enable(c.ce);
  const bool nd_was = nd_.flag();
  const bool sd_was = sd_.flag();
  nd_.observe(w, initial, expected);
  sd_.observe(w, initial, expected);
  if (sink_) {
    if (!nd_was && nd_.flag()) fire("ND");
    if (!sd_was && sd_.flag()) fire("SD");
  }
}

void Obsc::fire(const char* which) {
  obs::Event e;
  e.kind = obs::EventKind::DetectorFired;
  e.name = which;
  e.a = wire_id_;
  e.b = bus_id_;
  sink_->on_event(e);
}

}  // namespace jsi::bsc
