#ifndef JSI_BSC_NETLISTS_HPP
#define JSI_BSC_NETLISTS_HPP

#include "rtl/netlist.hpp"

namespace jsi::bsc {

/// Structural gate-level netlists of the three boundary-scan cells.
///
/// These serve two purposes:
///  1. the Table 7 cost analysis counts their NAND-equivalents
///     (`rtl::nand_equiv`), and
///  2. equivalence tests clock them with the event-driven `rtl::NetlistSim`
///     and check they match the behavioural cells bit-for-bit.
///
/// Common input nets: `tdi`, `shift_dr` (capture/shift select),
/// `clock_dr` (FF1 clock), `update_dr` (FF2 clock), `mode`.
/// Common outputs: `tdo` (= Q1), `pout` (parallel output).

/// Conventional cell (Fig 4). Extra input: `pin_in`.
rtl::Netlist build_standard_bsc_netlist();

/// Pattern-generation cell (Fig 6). Extra inputs: `core_out`, `si`.
/// Extra outputs: `q2` (pattern stage), `q3` (divider stage).
rtl::Netlist build_pgbsc_netlist();

/// Observation cell (Fig 9). Extra inputs: `pin_in`, `si`, `nd_sd`, and
/// the sensor pulse nets `nd_pulse`/`sd_pulse` (driven by the analog
/// macros in silicon, by the testbench here). Extra outputs: `nd_q`,
/// `sd_q` (the sticky sensor flip-flops).
rtl::Netlist build_obsc_netlist();

}  // namespace jsi::bsc

#endif  // JSI_BSC_NETLISTS_HPP
