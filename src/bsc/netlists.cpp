#include "bsc/netlists.hpp"

namespace jsi::bsc {

using rtl::GateKind;
using rtl::Netlist;
using rtl::NetId;

Netlist build_standard_bsc_netlist() {
  Netlist nl("standard_bsc");
  const NetId pin = nl.add_input("pin_in");
  const NetId tdi = nl.add_input("tdi");
  const NetId shift_dr = nl.add_input("shift_dr");
  const NetId clock_dr = nl.add_input("clock_dr");
  const NetId update_dr = nl.add_input("update_dr");
  const NetId mode = nl.add_input("mode");

  const NetId d1 = nl.add_gate(GateKind::Mux2, {pin, tdi, shift_dr}, "d1");
  const NetId q1 = nl.add_gate(GateKind::Dff, {d1, clock_dr}, "q1");
  const NetId q2 = nl.add_gate(GateKind::Dff, {q1, update_dr}, "q2");
  const NetId pout = nl.add_gate(GateKind::Mux2, {pin, q2, mode}, "pout");

  nl.name_net(q1, "tdo");
  nl.set_output(q1, "tdo");
  nl.set_output(pout, "pout");
  nl.validate();
  return nl;
}

Netlist build_pgbsc_netlist() {
  Netlist nl("pgbsc");
  const NetId core_out = nl.add_input("core_out");
  const NetId tdi = nl.add_input("tdi");
  const NetId clock_dr = nl.add_input("clock_dr");
  const NetId update_dr = nl.add_input("update_dr");
  const NetId si = nl.add_input("si");
  const NetId mode = nl.add_input("mode");

  // FF1: victim-select scan stage, scan input only (no capture mux).
  const NetId q1 = nl.add_gate(GateKind::Dff, {tdi, clock_dr}, "q1");

  const NetId one = nl.add_gate(GateKind::Const1, {}, "one");

  // FF3: divide-by-two toggle, clocked by Update-DR. In SI mode it
  // toggles; outside SI mode it re-arms to 1 so the first SI update leaves
  // the victim quiet (the Fig 5 phase).
  const NetId q3 = nl.add_net("q3");
  const NetId nq3 = nl.add_gate(GateKind::Inv, {q3}, "nq3");
  const NetId d3 = nl.add_gate(GateKind::Mux2, {one, nq3, si}, "d3");
  nl.add_gate_driving(q3, GateKind::Dff, {d3, update_dr}, "ff3");

  // FF2: pattern stage, single-clock design with a synchronous enable —
  // no derived/gated clock, so victim/aggressor mode changes cannot glitch
  // a clock edge. Enable at the Update-DR edge sees the pre-toggle Q3:
  //   SI=0 -> always load (normal update);
  //   SI=1, aggressor (Q1=0) -> always toggle;
  //   SI=1, victim (Q1=1) -> toggle only when Q3==0 (every 2nd update).
  const NetId en_v = nl.add_gate(GateKind::Nand2, {q1, q3}, "en_v");
  const NetId en = nl.add_gate(GateKind::Mux2, {one, en_v, si}, "en");
  const NetId q2 = nl.add_net("q2");
  const NetId nq2 = nl.add_gate(GateKind::Inv, {q2}, "nq2");
  const NetId d2 = nl.add_gate(GateKind::Mux2, {q1, nq2, si}, "d2");
  const NetId d2_eff = nl.add_gate(GateKind::Mux2, {q2, d2, en}, "d2_eff");
  nl.add_gate_driving(q2, GateKind::Dff, {d2_eff, update_dr}, "ff2");

  const NetId pout = nl.add_gate(GateKind::Mux2, {core_out, q2, mode}, "pout");

  nl.name_net(q1, "tdo");
  nl.set_output(q1, "tdo");
  nl.set_output(pout, "pout");
  nl.set_output(q2, "q2");
  nl.set_output(q3, "q3");
  nl.validate();
  return nl;
}

Netlist build_obsc_netlist() {
  Netlist nl("obsc");
  const NetId pin = nl.add_input("pin_in");
  const NetId tdi = nl.add_input("tdi");
  const NetId shift_dr = nl.add_input("shift_dr");
  const NetId clock_dr = nl.add_input("clock_dr");
  const NetId update_dr = nl.add_input("update_dr");
  const NetId mode = nl.add_input("mode");
  const NetId si = nl.add_input("si");
  const NetId nd_sd = nl.add_input("nd_sd");
  const NetId nd_pulse = nl.add_input("nd_pulse");
  const NetId sd_pulse = nl.add_input("sd_pulse");

  // Analog sensor macros (area only; their behavioural function lives in
  // jsi::si and the pulse nets are driven externally).
  nl.add_gate(GateKind::AnalogNd, {pin}, "nd_macro");
  nl.add_gate(GateKind::AnalogSd, {pin}, "sd_macro");

  // Sticky sensor flip-flops: D tied high, clocked by the sensor pulse.
  const NetId one = nl.add_gate(GateKind::Const1, {}, "one");
  const NetId nd_q = nl.add_gate(GateKind::Dff, {one, nd_pulse}, "nd_q");
  const NetId sd_q = nl.add_gate(GateKind::Dff, {one, sd_pulse}, "sd_q");

  // sel = ~SI | ShiftDR (Table 4); sel=0 presents the selected sensor FF.
  const NetId nsi = nl.add_gate(GateKind::Inv, {si}, "nsi");
  const NetId sel = nl.add_gate(GateKind::Or2, {nsi, shift_dr}, "sel");
  const NetId sens = nl.add_gate(GateKind::Mux2, {sd_q, nd_q, nd_sd}, "sens");
  const NetId d_cap = nl.add_gate(GateKind::Mux2, {sens, pin, sel}, "d_cap");

  const NetId d1 = nl.add_gate(GateKind::Mux2, {d_cap, tdi, shift_dr}, "d1");
  const NetId q1 = nl.add_gate(GateKind::Dff, {d1, clock_dr}, "q1");
  const NetId q2 = nl.add_gate(GateKind::Dff, {q1, update_dr}, "q2");
  const NetId pout = nl.add_gate(GateKind::Mux2, {pin, q2, mode}, "pout");

  nl.name_net(q1, "tdo");
  nl.set_output(q1, "tdo");
  nl.set_output(pout, "pout");
  nl.set_output(nd_q, "nd_q");
  nl.set_output(sd_q, "sd_q");
  nl.validate();
  return nl;
}

}  // namespace jsi::bsc
