#ifndef JSI_BSC_STANDARD_HPP
#define JSI_BSC_STANDARD_HPP

#include "jtag/cell.hpp"

namespace jsi::bsc {

/// The conventional IEEE 1149.1 boundary-scan cell (paper Fig 4): a
/// capture/shift flip-flop (FF1) feeding an update/hold flip-flop (FF2),
/// with the Mode mux selecting between the functional path and FF2.
///
/// Used for the `m` non-interconnect pins of the SoC model and for the
/// whole sending side of the conventional-BSA baseline.
class StandardBsc : public jtag::BoundaryCell {
 public:
  StandardBsc() = default;

  void capture(const jtag::CellCtl& c) override;
  bool shift_bit(bool tdi, const jtag::CellCtl& c) override;
  void update(const jtag::CellCtl& c) override;
  void reset() override;

  void set_parallel_in(util::Logic v) override { pin_ = v; }
  util::Logic parallel_out(const jtag::CellCtl& c) const override;

  /// Shift-stage (FF1) content.
  bool ff1() const { return ff1_; }
  /// Update-stage (FF2) content.
  bool ff2() const { return ff2_; }

 private:
  util::Logic pin_ = util::Logic::X;
  bool ff1_ = false;
  bool ff2_ = false;
};

}  // namespace jsi::bsc

#endif  // JSI_BSC_STANDARD_HPP
