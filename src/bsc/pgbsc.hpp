#ifndef JSI_BSC_PGBSC_HPP
#define JSI_BSC_PGBSC_HPP

#include "jtag/cell.hpp"

namespace jsi::bsc {

/// Pattern-Generation Boundary-Scan Cell (paper Fig 6, Table 1).
///
/// A sending-side cell that generates the reordered Maximum-Aggressor test
/// patterns in hardware. Three flip-flops:
///
///  * **FF1** — scan stage, holds the one-hot *victim-select* bit
///    (Table 2). Its scan input is TDI only: in SI mode Capture-DR leaves
///    it untouched so shifting a single bit rotates the victim.
///  * **FF2** — pattern/update stage driving the interconnect when
///    Mode=1. In SI mode its next value is its own complement.
///  * **FF3** — toggle stage dividing the Update-DR rate by two; the mux
///    `Q1·SI` selects FF3's output as FF2's clock in victim mode so the
///    victim line transitions at half the aggressor frequency (Fig 7).
///
/// Operating modes (Table 1):
///   | mode      | Q1 | SI | FF2 clock      | FF2 data |
///   | victim    | 1  | 1  | Update-DR / 2  | ~Q2      |
///   | aggressor | 0  | 1  | Update-DR      | ~Q2      |
///   | normal    | x  | 0  | Update-DR      | Q1       |
///
/// FF3 is (re)initialized to 1 by reset and by any non-SI Update-DR (the
/// SAMPLE/PRELOAD pass that loads the initial value), so the first SI
/// Update-DR produces a falling FF3 edge and the victim's first toggle
/// lands on the *second* Update-DR — giving the Fig 5 sequence
/// {Pg, Rs, P̄g} from initial 0 and {Ng, Fs, N̄g} from initial 1.
class Pgbsc : public jtag::BoundaryCell {
 public:
  Pgbsc() = default;

  void capture(const jtag::CellCtl& c) override;
  bool shift_bit(bool tdi, const jtag::CellCtl& c) override;
  void update(const jtag::CellCtl& c) override;
  void reset() override;

  void set_parallel_in(util::Logic v) override { core_out_ = v; }
  util::Logic parallel_out(const jtag::CellCtl& c) const override;

  /// Victim-select bit (FF1 / Q1): 1 = this wire is the victim.
  bool q1() const { return ff1_; }
  /// Pattern stage (FF2 / Q2): the value driven onto the wire in SI mode.
  bool q2() const { return ff2_; }
  /// Divide-by-two stage (FF3 / Q3).
  bool q3() const { return ff3_; }

  /// True when the last SI-mode update clocked FF2 (used by the Fig 7
  /// waveform bench to display CLK-FF2).
  bool last_update_clocked_ff2() const { return clocked_ff2_; }

 private:
  util::Logic core_out_ = util::Logic::X;
  bool ff1_ = false;
  bool ff2_ = false;
  bool ff3_ = true;
  bool clocked_ff2_ = false;
};

}  // namespace jsi::bsc

#endif  // JSI_BSC_PGBSC_HPP
