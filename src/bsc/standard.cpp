#include "bsc/standard.hpp"

namespace jsi::bsc {

void StandardBsc::capture(const jtag::CellCtl&) {
  ff1_ = util::to_bool(pin_);
}

bool StandardBsc::shift_bit(bool tdi, const jtag::CellCtl&) {
  const bool out = ff1_;
  ff1_ = tdi;
  return out;
}

void StandardBsc::update(const jtag::CellCtl&) { ff2_ = ff1_; }

void StandardBsc::reset() {
  ff1_ = false;
  ff2_ = false;
}

util::Logic StandardBsc::parallel_out(const jtag::CellCtl& c) const {
  return c.mode ? util::to_logic(ff2_) : pin_;
}

}  // namespace jsi::bsc
