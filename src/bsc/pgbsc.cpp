#include "bsc/pgbsc.hpp"

namespace jsi::bsc {

void Pgbsc::capture(const jtag::CellCtl& c) {
  // Fig 6: FF1's data input is TDI only — there is no parallel capture
  // path, so in SI mode Capture-DR preserves the victim-select word.
  // Outside SI mode behave like a standard output cell (SAMPLE).
  if (!c.si) ff1_ = util::to_bool(core_out_);
}

bool Pgbsc::shift_bit(bool tdi, const jtag::CellCtl&) {
  const bool out = ff1_;
  ff1_ = tdi;
  return out;
}

void Pgbsc::update(const jtag::CellCtl& c) {
  clocked_ff2_ = false;
  if (c.si && !c.gen) {
    // O-SITEST: SI keeps the scan datapath reconfigured but the pattern
    // machinery is clock-gated, so read-out scans leave FF2/FF3 (and the
    // driven bus) untouched.
    return;
  }
  if (!c.si) {
    // Normal mode (Table 1 row 3): FF2 loads FF1, FF3 re-arms to 1 so the
    // upcoming SI session starts with a deterministic divider phase.
    ff2_ = ff1_;
    ff3_ = true;
    clocked_ff2_ = true;
    return;
  }
  // SI mode: FF3 toggles on every Update-DR; FF2 is clocked either by
  // Update-DR itself (aggressor) or by FF3's rising edge (victim).
  const bool ff3_old = ff3_;
  ff3_ = !ff3_;
  const bool victim = ff1_;
  const bool clk_ff2 = victim ? (!ff3_old && ff3_) : true;
  if (clk_ff2) {
    ff2_ = !ff2_;
    clocked_ff2_ = true;
  }
}

void Pgbsc::reset() {
  ff1_ = false;
  ff2_ = false;
  ff3_ = true;
  clocked_ff2_ = false;
}

util::Logic Pgbsc::parallel_out(const jtag::CellCtl& c) const {
  return c.mode ? util::to_logic(ff2_) : core_out_;
}

}  // namespace jsi::bsc
