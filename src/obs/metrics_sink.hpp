#ifndef JSI_OBS_METRICS_SINK_HPP
#define JSI_OBS_METRICS_SINK_HPP

#include <cstdint>

#include "obs/events.hpp"
#include "obs/registry.hpp"

namespace jsi::obs {

/// Folds the event stream into a Registry:
///
///   tck.total                       every StateEdge
///   tck.state.{shift,capture,update,pause,other}
///   tck.phase.{generation,observation}   split by the engine's op spans
///                                        (edges inside a Readout op are
///                                        observation, everything else
///                                        generation — the same rule the
///                                        engine and dry_run_cost use)
///   op.{Reset,LoadIr,ScanIr,ScanDr,UpdateDr,Readout}   TapOp counts
///   op.tcks                         per-TapOp latency histogram
///   plan.count / session.<kind>     executions
///   bus.transitions, bus.cache_hits, bus.cache_misses
///   detector.nd_fired, detector.sd_fired
///   sim.scheduler_events, jtag.protocol_violations
///   obs.consistency_errors          cross-check failures (see below)
///
/// Cross-check: every PlanEnd event carries the engine's own measured
/// totals (value = total, a = generation, b = observation TCKs). When
/// this sink also saw the TAP edges of that plan, the two accountings
/// must agree; a mismatch bumps `obs.consistency_errors` and — in strict
/// mode — throws, so tests pin dry-run == engine == metrics.
///
/// Hot-path metric handles are resolved once at construction, so a
/// StateEdge costs a few increments, not a map lookup.
class MetricsSink final : public Sink {
 public:
  explicit MetricsSink(Registry& reg);

  Registry& registry() { return *reg_; }

  /// Throw std::logic_error when engine and edge-count accountings of a
  /// plan disagree (instead of only counting the mismatch).
  void set_strict(bool on) { strict_ = on; }
  bool strict() const { return strict_; }

  std::uint64_t consistency_errors() const { return errors_; }

  /// Forget any in-flight plan accounting (edge counts since PlanBegin,
  /// the in-observation flag). Used when a stream is abandoned mid-plan —
  /// e.g. a campaign worker whose unit threw — so the next plan's
  /// cross-check starts clean. Registered metrics are untouched.
  void reset_plan_state() {
    in_observation_ = false;
    plan_edges_ = 0;
    plan_generation_ = 0;
    plan_observation_ = 0;
  }

  void on_event(const Event& e) override;

 private:
  Registry* reg_;
  // Pre-resolved hot-path handles (stable: Registry is node-based).
  Counter* tck_total_;
  Counter* tck_state_[kTckPhaseCount];
  Counter* tck_generation_;
  Counter* tck_observation_;
  Histogram* op_tcks_;

  bool strict_ = false;
  bool in_observation_ = false;  // inside a Readout op span
  std::uint64_t errors_ = 0;
  // Edge counts since the last PlanBegin, for the PlanEnd cross-check.
  std::uint64_t plan_edges_ = 0;
  std::uint64_t plan_generation_ = 0;
  std::uint64_t plan_observation_ = 0;
};

}  // namespace jsi::obs

#endif  // JSI_OBS_METRICS_SINK_HPP
