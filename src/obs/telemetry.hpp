#ifndef JSI_OBS_TELEMETRY_HPP
#define JSI_OBS_TELEMETRY_HPP

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace jsi::obs {

/// Live-telemetry settings of a campaign run. Disabled by default: the
/// whole layer then costs one branch per work unit and allocates nothing
/// — the deterministic report/events/metrics artifacts are untouched
/// either way (telemetry only ever *reads* worker state, on a side
/// channel).
struct TelemetryConfig {
  bool enabled = false;
  /// Sampler period. The sampler additionally emits one snapshot at
  /// start (seq 0) and one after the last unit, so even campaigns
  /// shorter than one interval produce at least two heartbeats.
  std::uint64_t interval_ms = 250;
  /// JSONL heartbeat file ("" = no file). Opened at start(); open
  /// failure throws std::runtime_error before any unit runs.
  std::string sink_path;
  /// In-memory heartbeat sink for tests (not owned; may be nullptr).
  /// Used in addition to `sink_path`.
  std::ostream* sink = nullptr;
  /// Render a single-line terminal progress bar with ETA on every
  /// sample (to `progress_stream`, default std::cerr).
  bool progress = false;
  std::ostream* progress_stream = nullptr;
};

/// Per-unit counter deltas a worker publishes when a unit completes —
/// the unit's slice of its (already snapshotted) registry plus the
/// wall-clock it spent.
struct UnitDelta {
  std::uint64_t busy_ns = 0;
  std::uint64_t transitions = 0;
  std::uint64_t tcks = 0;
  std::uint64_t table_hits = 0;
  std::uint64_t table_misses = 0;
  std::uint64_t memo_hits = 0;
  std::uint64_t memo_misses = 0;
};

/// One worker's lock-free publication slot. Every field is a monotone
/// atomic the worker bumps and the sampler folds; the label is a pointer
/// into the campaign's stable unit table (valid for the whole run). The
/// publish path (`begin_unit`/`end_unit`/`add_idle`) performs only
/// relaxed atomic arithmetic: no locks, no allocation — pinned by the
/// zero-allocation telemetry test. Cache-line alignment keeps workers
/// from false-sharing each other's slots.
struct alignas(64) WorkerProgress {
  std::atomic<std::uint64_t> units_started{0};
  std::atomic<std::uint64_t> units_completed{0};
  std::atomic<std::uint64_t> transitions{0};
  std::atomic<std::uint64_t> tcks{0};
  std::atomic<std::uint64_t> busy_ns{0};
  std::atomic<std::uint64_t> idle_ns{0};
  std::atomic<std::uint64_t> table_hits{0};
  std::atomic<std::uint64_t> table_misses{0};
  std::atomic<std::uint64_t> memo_hits{0};
  std::atomic<std::uint64_t> memo_misses{0};
  /// Name of the unit currently running on this worker (static for the
  /// run), nullptr when the worker is between units or done.
  std::atomic<const char*> current_unit{nullptr};

  void begin_unit(const char* label) noexcept {
    current_unit.store(label, std::memory_order_relaxed);
    units_started.fetch_add(1, std::memory_order_relaxed);
  }

  void end_unit(const UnitDelta& d) noexcept {
    busy_ns.fetch_add(d.busy_ns, std::memory_order_relaxed);
    transitions.fetch_add(d.transitions, std::memory_order_relaxed);
    tcks.fetch_add(d.tcks, std::memory_order_relaxed);
    table_hits.fetch_add(d.table_hits, std::memory_order_relaxed);
    table_misses.fetch_add(d.table_misses, std::memory_order_relaxed);
    memo_hits.fetch_add(d.memo_hits, std::memory_order_relaxed);
    memo_misses.fetch_add(d.memo_misses, std::memory_order_relaxed);
    current_unit.store(nullptr, std::memory_order_relaxed);
    units_completed.fetch_add(1, std::memory_order_relaxed);
  }

  void add_idle(std::uint64_t ns) noexcept {
    idle_ns.fetch_add(ns, std::memory_order_relaxed);
  }
};

/// One worker's state as folded into a Snapshot.
struct WorkerSnapshot {
  std::size_t worker = 0;
  std::uint64_t units_started = 0;
  std::uint64_t units_completed = 0;
  std::uint64_t busy_ns = 0;
  std::uint64_t idle_ns = 0;
  double utilization = 0.0;   ///< busy / (busy + idle), 0 when untimed
  std::string current_unit;   ///< "" when idle / done
};

/// One monotone point-in-time view of a running campaign. Successive
/// snapshots from the same Telemetry never regress: `seq` strictly
/// increases, `t_ms` and every cumulative count are non-decreasing
/// (each is a coherent read of a monotone atomic). Rates are cumulative
/// averages over the elapsed run time, so they are well-defined from the
/// first completed unit onward.
struct Snapshot {
  /// Bumped when the record layout changes; consumers key on the
  /// "jsi.telemetry.v1" schema string this constant renders into.
  static constexpr int kSchemaVersion = 1;

  std::uint64_t seq = 0;
  std::uint64_t wall_ms = 0;  ///< system clock, ms since the Unix epoch
  std::uint64_t t_ms = 0;     ///< monotonic ms since telemetry start
  std::size_t units_total = 0;
  std::uint64_t units_done = 0;
  std::uint64_t units_running = 0;
  std::uint64_t transitions = 0;
  std::uint64_t tcks = 0;
  double units_per_sec = 0.0;
  double transitions_per_sec = 0.0;
  double tcks_per_sec = 0.0;
  double table_hit_rate = 0.0;
  double memo_hit_rate = 0.0;
  std::vector<WorkerSnapshot> workers;
};

/// Render one snapshot as a single JSONL heartbeat record (trailing
/// newline) — the schema the telemetry golden test pins:
///   {"schema":"jsi.telemetry.v1","seq":3,"wall_ms":...,"t_ms":750,
///    "units_total":12,"units_done":7,...,"workers":[{...},...]}
void write_snapshot_jsonl(std::ostream& os, const Snapshot& s);

/// Render the single-line terminal progress view of a snapshot:
///   [=====>....] 7/12 units | 3.1 u/s | eta 1.6s | 4 workers 87% busy
std::string render_progress_line(const Snapshot& s);

/// The live-snapshot layer over a sharded campaign: owns one lock-free
/// WorkerProgress slot per worker and an optional sampler thread that
/// periodically folds the slots into a Snapshot and streams it as JSONL
/// heartbeats (plus an optional terminal progress line). Strictly
/// observational: it never touches the per-worker Hubs or the
/// deterministic merged artifacts, so enabling it cannot change a
/// campaign's bytes — only report on them while they are produced.
///
/// Lifecycle: construct (slots exist, everything zero), hand slots to
/// workers, start() (emits the seq-0 heartbeat, spawns the sampler),
/// run the campaign, stop() (joins the sampler, emits the final
/// heartbeat). sample() is safe at any point in between — and without
/// start()/stop() at all, which is how the unit tests drive it.
class Telemetry {
 public:
  Telemetry(TelemetryConfig cfg, std::size_t n_workers,
            std::size_t units_total);
  ~Telemetry();

  Telemetry(const Telemetry&) = delete;
  Telemetry& operator=(const Telemetry&) = delete;

  bool enabled() const { return cfg_.enabled; }
  const TelemetryConfig& config() const { return cfg_; }

  /// The worker's publication slot, nullptr when telemetry is disabled
  /// (the worker then skips all publishing with one branch).
  WorkerProgress* worker_slot(std::size_t w) {
    if (!cfg_.enabled || w >= slots_.size()) return nullptr;
    return &slots_[w];
  }

  /// Fold every worker slot into one monotone snapshot, stamped with
  /// the elapsed time since construction. Thread-safe against concurrent
  /// worker publishing (reads are coherent atomics).
  Snapshot sample();

  /// Open the sink, emit the seq-0 heartbeat, spawn the sampler thread.
  /// No-op when disabled. Throws std::runtime_error when `sink_path`
  /// cannot be opened.
  void start();

  /// Join the sampler and emit the final heartbeat. No-op when disabled
  /// or never started; idempotent.
  void stop();

  /// Heartbeat records emitted so far (start + periodic + final).
  std::uint64_t heartbeats() const { return heartbeats_.load(); }

 private:
  void emit(const Snapshot& s);
  void sampler_loop();

  TelemetryConfig cfg_;
  std::size_t units_total_;
  std::vector<WorkerProgress> slots_;
  std::chrono::steady_clock::time_point t0_;

  std::unique_ptr<std::ostream> file_;  // owns the sink_path stream
  std::atomic<std::uint64_t> seq_{0};
  std::atomic<std::uint64_t> heartbeats_{0};
  std::uint64_t last_units_done_ = 0;  // emitted monotonicity clamp

  std::mutex mu_;  // guards emit() and the sampler wait
  std::condition_variable cv_;
  bool stop_requested_ = false;
  bool started_ = false;
  std::thread sampler_;
};

}  // namespace jsi::obs

#endif  // JSI_OBS_TELEMETRY_HPP
