#include "obs/events.hpp"

namespace jsi::obs {

const char* event_kind_name(EventKind k) {
  switch (k) {
    case EventKind::SessionBegin: return "SessionBegin";
    case EventKind::SessionEnd: return "SessionEnd";
    case EventKind::PlanBegin: return "PlanBegin";
    case EventKind::PlanEnd: return "PlanEnd";
    case EventKind::TapOpBegin: return "TapOpBegin";
    case EventKind::TapOpEnd: return "TapOpEnd";
    case EventKind::StateEdge: return "StateEdge";
    case EventKind::BusTransition: return "BusTransition";
    case EventKind::CacheLookup: return "CacheLookup";
    case EventKind::DetectorFired: return "DetectorFired";
    case EventKind::SchedulerRun: return "SchedulerRun";
    case EventKind::ProtocolViolation: return "ProtocolViolation";
    case EventKind::Mark: return "Mark";
  }
  return "?";
}

const char* tck_phase_name(TckPhase p) {
  switch (p) {
    case TckPhase::Shift: return "shift";
    case TckPhase::Capture: return "capture";
    case TckPhase::Update: return "update";
    case TckPhase::Pause: return "pause";
    case TckPhase::Other: return "other";
  }
  return "?";
}

}  // namespace jsi::obs
