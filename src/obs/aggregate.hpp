#ifndef JSI_OBS_AGGREGATE_HPP
#define JSI_OBS_AGGREGATE_HPP

#include <mutex>

#include "obs/events.hpp"
#include "obs/metrics_sink.hpp"
#include "obs/registry.hpp"

namespace jsi::obs {

/// Thread-safe fan-in: many threads' event streams folded into one
/// shared Registry under a mutex — the live, cross-worker view of a
/// sharded campaign (per-worker Hubs stay lock-free; this sink is the
/// optional global meter they additionally feed).
///
/// Two caveats follow from interleaving:
///  * PlanEnd events are dropped before folding. The MetricsSink's
///    per-plan TCK cross-check assumes one plan at a time; with workers
///    interleaved, the edge counts since "the last PlanBegin" mix plans
///    and the check would fire spuriously. Per-plan consistency is still
///    enforced — by each worker's own strict Hub.
///  * Aggregate counters are totals only; nothing about per-plan or
///    per-session attribution survives the interleave. The campaign's
///    deterministic merged Registry (unit-ordered) is the one to assert
///    against; this sink is for live dashboards and progress metering.
class AggregatingSink final : public Sink {
 public:
  AggregatingSink() : metrics_(registry_) {}

  void on_event(const Event& e) override {
    if (e.kind == EventKind::PlanEnd) return;  // see class comment
    const std::lock_guard<std::mutex> lock(mu_);
    metrics_.on_event(e);
  }

  /// Consistent copy of the aggregate registry (taken under the lock).
  Registry snapshot() const {
    const std::lock_guard<std::mutex> lock(mu_);
    return registry_;
  }

  /// Total of one counter, read under the lock.
  std::uint64_t counter_value(const std::string& name) const {
    const std::lock_guard<std::mutex> lock(mu_);
    return registry_.counter_value(name);
  }

 private:
  mutable std::mutex mu_;
  Registry registry_;
  MetricsSink metrics_;
};

}  // namespace jsi::obs

#endif  // JSI_OBS_AGGREGATE_HPP
