#ifndef JSI_OBS_JSON_HPP
#define JSI_OBS_JSON_HPP

// The JSON parser/writer started life here as an obs-internal helper but
// is a generic utility (the scenario front-end must not depend on obs),
// so the implementation moved to util/json. This header keeps the old
// `jsi::obs::json` names as thin aliases so existing includes compile
// unchanged; new code should include "util/json.hpp" directly.

#include "util/json.hpp"

namespace jsi::obs::json {

using Value = jsi::util::json::Value;
using jsi::util::json::parse;
using jsi::util::json::write_escaped_string;
using jsi::util::json::write_number;

}  // namespace jsi::obs::json

#endif  // JSI_OBS_JSON_HPP
