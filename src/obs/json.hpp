#ifndef JSI_OBS_JSON_HPP
#define JSI_OBS_JSON_HPP

#include <iosfwd>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace jsi::obs::json {

/// Minimal JSON document model — just enough to validate what the
/// tracer/registry emit (tests and the bench smoke target re-parse every
/// exported file; no third-party JSON dependency is available in-tree).
struct Value {
  enum class Type { Null, Bool, Number, String, Array, Object };

  Type type = Type::Null;
  bool boolean = false;
  double number = 0.0;
  std::string str;
  std::vector<Value> array;
  std::vector<std::pair<std::string, Value>> object;  // insertion order

  bool is_object() const { return type == Type::Object; }
  bool is_array() const { return type == Type::Array; }
  bool is_number() const { return type == Type::Number; }
  bool is_string() const { return type == Type::String; }

  /// First member named `key` (objects only), nullptr when absent.
  const Value* find(const std::string& key) const;
};

/// Strict recursive-descent parse of a complete JSON text. On failure
/// returns nullopt and, when `error` is given, a position-annotated
/// message. `\u` escapes are decoded to UTF-8; surrogate pairs must be
/// properly paired (a lone high or low surrogate is a parse error).
std::optional<Value> parse(std::string_view text, std::string* error = nullptr);

/// Write `s` as a quoted JSON string: `"` and `\` are backslash-escaped,
/// control characters (U+0000–U+001F) become \n/\t/\r/\b/\f or \u00XX.
/// Every emitter in the obs layer funnels through this, so any label is
/// safe on the output side — the strict parser above round-trips it.
void write_escaped_string(std::ostream& os, std::string_view s);

}  // namespace jsi::obs::json

#endif  // JSI_OBS_JSON_HPP
