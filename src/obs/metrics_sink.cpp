#include "obs/metrics_sink.hpp"

#include <cstring>
#include <stdexcept>
#include <string>

namespace jsi::obs {

MetricsSink::MetricsSink(Registry& reg) : reg_(&reg) {
  tck_total_ = &reg.counter("tck.total");
  for (int p = 0; p < kTckPhaseCount; ++p) {
    tck_state_[p] = &reg.counter(
        std::string("tck.state.") + tck_phase_name(static_cast<TckPhase>(p)));
  }
  tck_generation_ = &reg.counter("tck.phase.generation");
  tck_observation_ = &reg.counter("tck.phase.observation");
  op_tcks_ = &reg.histogram("op.tcks");
}

void MetricsSink::on_event(const Event& e) {
  switch (e.kind) {
    case EventKind::StateEdge: {
      tck_total_->inc();
      tck_state_[static_cast<int>(e.phase)]->inc();
      ++plan_edges_;
      if (in_observation_) {
        tck_observation_->inc();
        ++plan_observation_;
      } else {
        tck_generation_->inc();
        ++plan_generation_;
      }
      break;
    }
    case EventKind::TapOpBegin:
      reg_->counter(std::string("op.") + e.name).inc();
      if (e.b == 1) in_observation_ = true;
      break;
    case EventKind::TapOpEnd:
      op_tcks_->observe(static_cast<double>(e.value));
      in_observation_ = false;
      break;
    case EventKind::PlanBegin:
      reg_->counter("plan.count").inc();
      plan_edges_ = 0;
      plan_generation_ = 0;
      plan_observation_ = 0;
      in_observation_ = false;
      break;
    case EventKind::PlanEnd: {
      // Engine-measured totals ride in the event; compare only when this
      // sink actually saw the plan's edges (a session may attach the
      // engine but not the TAP master).
      if (plan_edges_ > 0 &&
          (plan_edges_ != e.value ||
           plan_generation_ != static_cast<std::uint64_t>(e.a) ||
           plan_observation_ != static_cast<std::uint64_t>(e.b))) {
        ++errors_;
        reg_->counter("obs.consistency_errors").inc();
        if (strict_) {
          throw std::logic_error(
              "obs: TCK accounting mismatch: engine total/gen/obs = " +
              std::to_string(e.value) + "/" + std::to_string(e.a) + "/" +
              std::to_string(e.b) + ", metrics = " +
              std::to_string(plan_edges_) + "/" +
              std::to_string(plan_generation_) + "/" +
              std::to_string(plan_observation_));
        }
      }
      break;
    }
    case EventKind::SessionBegin:
      reg_->counter(std::string("session.") + e.name).inc();
      break;
    case EventKind::SessionEnd:
      break;
    case EventKind::BusTransition:
      reg_->counter("bus.transitions").inc();
      break;
    case EventKind::CacheLookup:
      // Two lookup families share the event kind, split by name: the
      // per-wire memo cache ("si.cache") and the per-transition
      // precompiled MA tables ("si.table").
      if (e.name != nullptr && std::strcmp(e.name, "si.table") == 0) {
        reg_->counter(e.a != 0 ? "bus.table_hits" : "bus.table_misses").inc();
      } else {
        reg_->counter(e.a != 0 ? "bus.cache_hits" : "bus.cache_misses").inc();
      }
      break;
    case EventKind::DetectorFired:
      reg_->counter(e.name[0] == 'N' ? "detector.nd_fired"
                                     : "detector.sd_fired")
          .inc();
      break;
    case EventKind::SchedulerRun:
      reg_->counter("sim.scheduler_events").inc(e.value);
      break;
    case EventKind::ProtocolViolation:
      reg_->counter("jtag.protocol_violations").inc();
      break;
    case EventKind::Mark:
      break;
  }
}

}  // namespace jsi::obs
