#include "obs/profile.hpp"

#include <algorithm>
#include <iomanip>
#include <numeric>
#include <sstream>

namespace jsi::obs {

namespace {

/// TCKs -> estimated milliseconds at the configured TCK period.
double tcks_to_ms(std::uint64_t tcks, std::uint64_t period_ps) {
  return static_cast<double>(tcks) * static_cast<double>(period_ps) / 1e9;
}

double pct(std::uint64_t part, std::uint64_t whole) {
  if (whole == 0) return 0.0;
  return static_cast<double>(part) * 100.0 / static_cast<double>(whole);
}

}  // namespace

std::string profile_report(const std::vector<ProfileUnit>& units,
                           const Registry& merged, const Snapshot* telemetry,
                           const ProfileOptions& opt) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(2);

  std::uint64_t total = 0, generation = 0, observation = 0;
  std::size_t violations = 0, failures = 0;
  for (const ProfileUnit& u : units) {
    total += u.total_tcks;
    generation += u.generation_tcks;
    observation += u.observation_tcks;
    if (u.violation) ++violations;
    if (u.failed) ++failures;
  }

  os << "== campaign profile ==\n";
  os << "units: " << units.size() << " (" << violations << " violations, "
     << failures << " failures)\n";
  os << "tcks: total=" << total << " generation=" << generation << " ("
     << pct(generation, total) << "%) observation=" << observation << " ("
     << pct(observation, total) << "%)\n";
  os << "wall est. @ " << static_cast<double>(opt.tck_period_ps) / 1000.0
     << " ns/tck: total " << tcks_to_ms(total, opt.tck_period_ps)
     << " ms (generation " << tcks_to_ms(generation, opt.tck_period_ps)
     << " ms, observation " << tcks_to_ms(observation, opt.tck_period_ps)
     << " ms)\n";

  // Sessions by kind: every "session.<kind>" counter of the merged
  // registry, in name order (deterministic).
  bool any_session = false;
  for (const auto& [name, c] : merged.counters()) {
    if (name.rfind("session.", 0) != 0) continue;
    if (!any_session) os << "sessions by kind:";
    any_session = true;
    os << ' ' << name.substr(8) << '=' << c.value();
  }
  if (any_session) os << '\n';

  // TCKs by TAP micro-phase.
  static constexpr const char* kStates[] = {"shift", "capture", "update",
                                            "pause", "other"};
  const std::uint64_t edge_total = merged.counter_value("tck.total");
  if (edge_total > 0) {
    os << "tck by state:";
    for (const char* st : kStates) {
      const std::uint64_t v =
          merged.counter_value(std::string("tck.state.") + st);
      os << ' ' << st << '=' << v << " (" << pct(v, edge_total) << "%)";
    }
    os << '\n';
  }

  // Per-TapOp latency distribution, summarized through the Histogram
  // accessors rather than raw bucket vectors.
  const auto hit = merged.histograms().find("op.tcks");
  if (hit != merged.histograms().end() && hit->second.count() > 0) {
    const Histogram& h = hit->second;
    os << "op.tcks: count=" << h.count() << " mean=" << h.mean()
       << " p50=" << h.quantile(0.5) << " p95=" << h.quantile(0.95) << '\n';
  }

  const std::uint64_t table_hits = merged.counter_value("bus.table_hits");
  const std::uint64_t table_misses = merged.counter_value("bus.table_misses");
  const std::uint64_t memo_hits = merged.counter_value("bus.cache_hits");
  const std::uint64_t memo_misses = merged.counter_value("bus.cache_misses");
  if (table_hits + table_misses + memo_hits + memo_misses > 0) {
    os << "bus lookups: table " << table_hits << '/'
       << (table_hits + table_misses) << " hits, memo " << memo_hits << '/'
       << (memo_hits + memo_misses) << " hits\n";
  }

  // Top-k slowest units by TCK count (deterministic tiebreak: the
  // campaign's stable unit order).
  if (!units.empty() && opt.top_k > 0) {
    std::vector<std::size_t> order(units.size());
    std::iota(order.begin(), order.end(), 0);
    std::stable_sort(order.begin(), order.end(),
                     [&units](std::size_t a, std::size_t b) {
                       return units[a].total_tcks > units[b].total_tcks;
                     });
    const std::size_t k = std::min(opt.top_k, order.size());
    os << "top " << k << " slowest units by tcks:\n";
    for (std::size_t r = 0; r < k; ++r) {
      const ProfileUnit& u = units[order[r]];
      os << "  " << (r + 1) << ". " << u.name << " tcks=" << u.total_tcks
         << " (gen=" << u.generation_tcks << " obs=" << u.observation_tcks
         << ')' << (u.failed ? " FAILED" : "") << '\n';
    }
  }

  if (telemetry != nullptr && !telemetry->workers.empty()) {
    os << "workers (measured, " << telemetry->t_ms << " ms wall):\n";
    for (const WorkerSnapshot& w : telemetry->workers) {
      os << "  w" << w.worker << ": units=" << w.units_completed << " busy="
         << static_cast<double>(w.busy_ns) / 1e6 << " ms idle="
         << static_cast<double>(w.idle_ns) / 1e6 << " ms utilization="
         << w.utilization * 100.0 << "%\n";
    }
  } else {
    os << "workers: no telemetry captured (run with --telemetry or "
          "--progress for measured utilization)\n";
  }
  return os.str();
}

}  // namespace jsi::obs
