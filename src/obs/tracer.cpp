#include "obs/tracer.hpp"

#include <ostream>

#include "obs/json.hpp"

namespace jsi::obs {

namespace {

/// ts in the chrome format is microseconds; TCK time is picoseconds.
void write_ts(std::ostream& os, std::uint64_t time_ps) {
  const std::uint64_t whole = time_ps / 1'000'000;
  const std::uint64_t frac = time_ps % 1'000'000;
  os << whole << '.';
  // Fixed six fractional digits keeps the output locale-independent.
  for (std::uint64_t div = 100'000; div >= 1; div /= 10) {
    os << (frac / div) % 10;
    if (div == 1) break;
  }
}

}  // namespace

void write_event_jsonl(std::ostream& os, const Event& e) {
  // Labels are escaped on output (not merely tolerated on input): a
  // name carrying a quote, backslash or control character must still
  // yield one valid JSON record per line.
  os << "{\"kind\":\"" << event_kind_name(e.kind) << "\",\"tck\":" << e.tck
     << ",\"t_ps\":" << e.time_ps << ",\"name\":";
  json::write_escaped_string(os, e.name);
  if (e.kind == EventKind::StateEdge) {
    os << ",\"phase\":\"" << tck_phase_name(e.phase) << '"';
  }
  os << ",\"a\":" << e.a << ",\"b\":" << e.b << ",\"value\":" << e.value
     << "}\n";
}

Tracer::Tracer(TracerConfig cfg) : cfg_(cfg) {
  if (cfg_.capacity == 0) cfg_.capacity = 1;
  ring_.reserve(cfg_.capacity);
}

void Tracer::push(const Event& e) {
  ++recorded_;
  if (ring_.size() < cfg_.capacity) {
    // Filling phase: records live at [0, size) in arrival order and
    // head_ stays 0 (the oldest record's slot once the ring is full).
    ring_.push_back(e);
    return;
  }
  ring_[head_] = e;
  head_ = (head_ + 1) % cfg_.capacity;
  ++dropped_;
}

void Tracer::on_event(const Event& e) {
  Event stamped = e;
  if (stamped.tck == Event::kNoStamp) {
    stamped.tck = last_tck_;
  } else {
    last_tck_ = stamped.tck;
  }
  if (stamped.time_ps == Event::kNoStamp) {
    stamped.time_ps = stamped.tck * cfg_.tck_period_ps;
  }
  if (e.kind == EventKind::StateEdge && !cfg_.tap_edges) return;
  if (e.kind == EventKind::CacheLookup && !cfg_.cache_lookups) return;
  push(stamped);
}

std::vector<Event> Tracer::events() const {
  std::vector<Event> out;
  out.reserve(ring_.size());
  if (ring_.size() < cfg_.capacity) {
    out = ring_;  // still filling: arrival order
    return out;
  }
  for (std::size_t i = head_; i < ring_.size(); ++i) out.push_back(ring_[i]);
  for (std::size_t i = 0; i < head_; ++i) out.push_back(ring_[i]);
  return out;
}

void Tracer::clear() {
  ring_.clear();
  head_ = 0;
  // recorded_/dropped_ survive: they meter the workload, not the buffer.
}

void Tracer::write_jsonl(std::ostream& os) const {
  for (const Event& e : events()) write_event_jsonl(os, e);
}

void Tracer::write_chrome_trace(std::ostream& os) const {
  os << "{\"traceEvents\":[";
  os << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,\"tid\":0,"
        "\"args\":{\"name\":\"jsi\"}},";
  os << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":0,"
        "\"args\":{\"name\":\"session\"}},";
  os << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":1,"
        "\"args\":{\"name\":\"tap-ops\"}},";
  os << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":2,"
        "\"args\":{\"name\":\"bus+detectors\"}}";

  auto slice = [&os](const char* name, char ph, int tid, std::uint64_t t_ps) {
    os << ",{\"name\":";
    json::write_escaped_string(os, name);
    os << ",\"ph\":\"" << ph << "\",\"pid\":0,\"tid\":" << tid << ",\"ts\":";
    write_ts(os, t_ps);
    os << '}';
  };

  // Counter samples (ph:"C"): Perfetto renders these as live-rate tracks
  // next to the span rows, so throughput is visible at a glance without
  // leaving the trace viewer.
  auto counter = [&os](const char* name, std::uint64_t t_ps, const char* key,
                       std::uint64_t value) {
    os << ",{\"name\":\"" << name << "\",\"ph\":\"C\",\"pid\":0,\"tid\":0,\"ts\":";
    write_ts(os, t_ps);
    os << ",\"args\":{\"" << key << "\":" << value << "}}";
  };

  std::uint64_t detector_firings = 0;
  for (const Event& e : events()) {
    switch (e.kind) {
      case EventKind::SessionBegin:
        slice(e.name, 'B', 0, e.time_ps);
        break;
      case EventKind::SessionEnd:
        slice(e.name, 'E', 0, e.time_ps);
        break;
      case EventKind::PlanBegin:
        slice("plan", 'B', 0, e.time_ps);
        break;
      case EventKind::PlanEnd:
        slice("plan", 'E', 0, e.time_ps);
        break;
      case EventKind::TapOpBegin:
        slice(e.name, 'B', 1, e.time_ps);
        break;
      case EventKind::TapOpEnd:
        slice(e.name, 'E', 1, e.time_ps);
        counter("tck", e.time_ps, "tck", e.tck);
        break;
      case EventKind::DetectorFired:
        os << ",{\"name\":";
        json::write_escaped_string(os, e.name);
        os << ",\"ph\":\"i\",\"s\":\"p\",\"pid\":0,\"tid\":2,\"ts\":";
        write_ts(os, e.time_ps);
        os << ",\"args\":{\"wire\":" << e.a << ",\"bus\":" << e.b
           << ",\"tck\":" << e.tck << ",\"vcd_ps\":" << e.time_ps << "}}";
        counter("detector-firings", e.time_ps, "fired", ++detector_firings);
        break;
      case EventKind::BusTransition:
        os << ",{\"name\":\"bus-transition\",\"ph\":\"i\",\"s\":\"t\","
              "\"pid\":0,\"tid\":2,\"ts\":";
        write_ts(os, e.time_ps);
        os << ",\"args\":{\"bus\":" << e.a << ",\"count\":" << e.value
           << ",\"tck\":" << e.tck << ",\"vcd_ps\":" << e.time_ps << "}}";
        counter("bus-transitions", e.time_ps, "count", e.value);
        break;
      case EventKind::ProtocolViolation:
        os << ",{\"name\":\"protocol-violation\",\"ph\":\"i\",\"s\":\"g\","
              "\"pid\":0,\"tid\":2,\"ts\":";
        write_ts(os, e.time_ps);
        os << ",\"args\":{\"index\":" << e.a << ",\"tck\":" << e.tck << "}}";
        break;
      case EventKind::Mark:
        os << ",{\"name\":";
        json::write_escaped_string(os, e.name);
        os << ",\"ph\":\"i\",\"s\":\"g\",\"pid\":0,\"tid\":0,\"ts\":";
        write_ts(os, e.time_ps);
        os << '}';
        break;
      case EventKind::StateEdge:
      case EventKind::CacheLookup:
      case EventKind::SchedulerRun:
        // Per-TCK / per-probe records stay in the JSONL export; rendering
        // them as slices would swamp the viewer.
        break;
    }
  }
  os << "]}\n";
}

}  // namespace jsi::obs
