#ifndef JSI_OBS_REGISTRY_HPP
#define JSI_OBS_REGISTRY_HPP

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

namespace jsi::obs {

/// Monotone event count.
class Counter {
 public:
  void inc(std::uint64_t by = 1) { v_ += by; }
  std::uint64_t value() const { return v_; }
  void reset() { v_ = 0; }

 private:
  std::uint64_t v_ = 0;
};

/// Last-written scalar (hit rates, configured sizes).
class Gauge {
 public:
  void set(double v) { v_ = v; }
  double value() const { return v_; }
  void reset() { v_ = 0.0; }

 private:
  double v_ = 0.0;
};

/// Cumulative histogram over fixed upper-bound buckets (Prometheus
/// style): `counts()[i]` holds observations <= `bounds()[i]`, with one
/// implicit overflow bucket at the end.
class Histogram {
 public:
  /// Default bounds suit per-TapOp TCK latencies (1 TCK .. full scans).
  static std::vector<double> default_bounds();

  Histogram() : Histogram(default_bounds()) {}
  explicit Histogram(std::vector<double> bounds);

  void observe(double x);

  /// Fold `other`'s observations into this histogram. The bucket layouts
  /// must match (throws std::invalid_argument otherwise): merging is only
  /// meaningful between histograms of the same metric.
  void merge(const Histogram& other);

  /// Overwrite the observation state wholesale — the campaign checkpoint
  /// loader's hook, which must reproduce a previously serialized
  /// histogram bit-for-bit (including the exact `sum` double, which no
  /// sequence of observe() calls could be trusted to rebuild). `counts`
  /// must have bounds().size() + 1 entries (throws std::invalid_argument)
  /// and `count` should equal their total; the bounds themselves are
  /// fixed at construction.
  void restore(std::vector<std::uint64_t> counts, std::uint64_t count,
               double sum);

  const std::vector<double>& bounds() const { return bounds_; }
  const std::vector<std::uint64_t>& counts() const { return counts_; }
  std::uint64_t count() const { return count_; }
  double sum() const { return sum_; }

  /// Arithmetic mean of all observations (0 when empty).
  double mean() const {
    return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
  }

  /// Approximate q-quantile (q in [0,1]) reconstructed from the bucket
  /// layout: linear interpolation inside the bucket holding the target
  /// rank, with the first bucket anchored at 0 and observations in the
  /// overflow bucket clamped to the highest bound. Exact enough for the
  /// p50/p95 summaries the profile report and BENCH_*.json print; 0 when
  /// the histogram is empty.
  double quantile(double q) const;

  void reset();

 private:
  std::vector<double> bounds_;          // sorted ascending
  std::vector<std::uint64_t> counts_;   // bounds_.size() + 1 (overflow)
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
};

/// Named metric store. Lookup creates on first use; references stay
/// stable for the registry's lifetime (std::map nodes), so hot-path
/// consumers resolve a metric once and increment through the pointer.
/// Iteration order is the name order, which makes every text/JSON dump
/// deterministic.
class Registry {
 public:
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name);
  Histogram& histogram(const std::string& name, std::vector<double> bounds);

  /// Value of `name` if the counter exists, 0 otherwise (test helper).
  std::uint64_t counter_value(const std::string& name) const;
  double gauge_value(const std::string& name) const;

  bool empty() const {
    return counters_.empty() && gauges_.empty() && histograms_.empty();
  }

  /// Zero every metric, keeping the registered names.
  void reset();

  /// Additive fold of `other` into this registry: counters and histogram
  /// buckets sum; gauges sum as well, so a merged gauge is meaningful for
  /// additive quantities only (per-shard campaign registries hold no
  /// others). Names absent here are created. Deterministic: merging the
  /// same sequence of registries in the same order always produces the
  /// same result, and because the fold is commutative for counters and
  /// histograms, any partition of a unit sequence into shards merges to
  /// identical totals. Throws std::invalid_argument on histogram
  /// bucket-layout mismatch.
  void merge(const Registry& other);

  /// `name value` per line, counters then gauges then histogram summaries.
  void write_text(std::ostream& os) const;

  /// One JSON object: {"counters":{...},"gauges":{...},"histograms":{...}}.
  void write_json(std::ostream& os) const;
  std::string to_json() const;

  const std::map<std::string, Counter>& counters() const { return counters_; }
  const std::map<std::string, Gauge>& gauges() const { return gauges_; }
  const std::map<std::string, Histogram>& histograms() const {
    return histograms_;
  }

 private:
  std::map<std::string, Counter> counters_;
  std::map<std::string, Gauge> gauges_;
  std::map<std::string, Histogram> histograms_;
};

/// Process-wide registry for benches and examples (library code takes an
/// explicit Registry; only standalone binaries use the global).
Registry& global_registry();

/// Dump the global registry as `BENCH_<name>.json` — the bench metrics
/// hook. The file lands in `$JSI_METRICS_DIR` when that is set, else the
/// current directory; an explicit `path` overrides both. Returns the
/// path written, or "" on I/O failure (benches must not die on a
/// read-only working directory).
std::string jsi_metrics_dump(const std::string& name,
                             const std::string& path = "");

}  // namespace jsi::obs

#endif  // JSI_OBS_REGISTRY_HPP
