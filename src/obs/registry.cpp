#include "obs/registry.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "obs/json.hpp"

namespace jsi::obs {

namespace {

// JSON-safe renderers shared with every other emitter in the repo:
// integral numbers print without a fraction so counters round-trip
// exactly, strings are escaped per the strict parser's rules.
using json::write_number;

void write_json_string(std::ostream& os, const std::string& s) {
  json::write_escaped_string(os, s);
}

}  // namespace

std::vector<double> Histogram::default_bounds() {
  return {1, 2, 5, 10, 20, 50, 100, 200, 500, 1000, 5000, 20000};
}

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  if (!std::is_sorted(bounds_.begin(), bounds_.end())) {
    throw std::invalid_argument("histogram bounds must be sorted");
  }
  counts_.assign(bounds_.size() + 1, 0);
}

void Histogram::observe(double x) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), x);
  ++counts_[static_cast<std::size_t>(it - bounds_.begin())];
  ++count_;
  sum_ += x;
}

void Histogram::reset() {
  std::fill(counts_.begin(), counts_.end(), 0);
  count_ = 0;
  sum_ = 0.0;
}

double Histogram::quantile(double q) const {
  if (count_ == 0 || bounds_.empty()) return 0.0;
  q = std::min(1.0, std::max(0.0, q));
  // Target rank, 1-based: the smallest observation index covering q of
  // the mass. ceil() keeps q=0.5 of an even count on the lower median's
  // bucket boundary rather than past it.
  const std::uint64_t target = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(
             std::ceil(q * static_cast<double>(count_))));
  std::uint64_t cum = 0;
  double lo = 0.0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    if (cum + counts_[i] >= target) {
      if (i >= bounds_.size()) {
        // Overflow bucket: no upper edge to interpolate toward; clamp to
        // the highest known bound (an under-estimate by construction).
        return bounds_.back();
      }
      const double hi = bounds_[i];
      const double frac = static_cast<double>(target - cum) /
                          static_cast<double>(counts_[i]);
      return lo + (hi - lo) * frac;
    }
    cum += counts_[i];
    if (i < bounds_.size()) lo = bounds_[i];
  }
  return bounds_.back();
}

void Histogram::restore(std::vector<std::uint64_t> counts,
                        std::uint64_t count, double sum) {
  if (counts.size() != bounds_.size() + 1) {
    throw std::invalid_argument(
        "histogram restore: counts length does not match the bucket layout");
  }
  counts_ = std::move(counts);
  count_ = count;
  sum_ = sum;
}

void Histogram::merge(const Histogram& other) {
  if (bounds_ != other.bounds_) {
    throw std::invalid_argument("histogram merge: bucket layouts differ");
  }
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    counts_[i] += other.counts_[i];
  }
  count_ += other.count_;
  sum_ += other.sum_;
}

Counter& Registry::counter(const std::string& name) {
  return counters_[name];
}

Gauge& Registry::gauge(const std::string& name) { return gauges_[name]; }

Histogram& Registry::histogram(const std::string& name) {
  return histograms_[name];
}

Histogram& Registry::histogram(const std::string& name,
                               std::vector<double> bounds) {
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(name, Histogram(std::move(bounds))).first;
  }
  return it->second;
}

std::uint64_t Registry::counter_value(const std::string& name) const {
  const auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second.value();
}

double Registry::gauge_value(const std::string& name) const {
  const auto it = gauges_.find(name);
  return it == gauges_.end() ? 0.0 : it->second.value();
}

void Registry::reset() {
  for (auto& [name, c] : counters_) c.reset();
  for (auto& [name, g] : gauges_) g.reset();
  for (auto& [name, h] : histograms_) h.reset();
}

void Registry::merge(const Registry& other) {
  for (const auto& [name, c] : other.counters_) {
    counters_[name].inc(c.value());
  }
  for (const auto& [name, g] : other.gauges_) {
    Gauge& mine = gauges_[name];
    mine.set(mine.value() + g.value());
  }
  for (const auto& [name, h] : other.histograms_) {
    const auto it = histograms_.find(name);
    if (it == histograms_.end()) {
      histograms_.emplace(name, h);
    } else if (it->second.bounds() != h.bounds()) {
      // Name the offending metric: a campaign merge folds dozens of
      // histograms, and "bucket layouts differ" alone is undebuggable.
      throw std::invalid_argument(
          "histogram merge: bucket layouts differ for metric \"" + name +
          "\"");
    } else {
      it->second.merge(h);
    }
  }
}

void Registry::write_text(std::ostream& os) const {
  for (const auto& [name, c] : counters_) {
    os << name << ' ' << c.value() << '\n';
  }
  for (const auto& [name, g] : gauges_) {
    os << name << ' ' << g.value() << '\n';
  }
  for (const auto& [name, h] : histograms_) {
    os << name << "_count " << h.count() << '\n';
    os << name << "_sum ";
    write_number(os, h.sum());
    os << '\n';
  }
}

void Registry::write_json(std::ostream& os) const {
  os << "{\"counters\":{";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    if (!first) os << ',';
    first = false;
    write_json_string(os, name);
    os << ':' << c.value();
  }
  os << "},\"gauges\":{";
  first = true;
  for (const auto& [name, g] : gauges_) {
    if (!first) os << ',';
    first = false;
    write_json_string(os, name);
    os << ':';
    write_number(os, g.value());
  }
  os << "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : histograms_) {
    if (!first) os << ',';
    first = false;
    write_json_string(os, name);
    os << ":{\"bounds\":[";
    for (std::size_t i = 0; i < h.bounds().size(); ++i) {
      if (i) os << ',';
      write_number(os, h.bounds()[i]);
    }
    os << "],\"counts\":[";
    for (std::size_t i = 0; i < h.counts().size(); ++i) {
      if (i) os << ',';
      os << h.counts()[i];
    }
    os << "],\"count\":" << h.count() << ",\"sum\":";
    write_number(os, h.sum());
    // Derived summaries so BENCH_*.json consumers can read p50/p95
    // latencies without reconstructing them from the bucket vectors.
    os << ",\"mean\":";
    write_number(os, h.mean());
    os << ",\"p50\":";
    write_number(os, h.quantile(0.5));
    os << ",\"p95\":";
    write_number(os, h.quantile(0.95));
    os << '}';
  }
  os << "}}";
}

std::string Registry::to_json() const {
  std::ostringstream ss;
  write_json(ss);
  return ss.str();
}

Registry& global_registry() {
  static Registry reg;
  return reg;
}

std::string jsi_metrics_dump(const std::string& name,
                             const std::string& path) {
  std::string target = path;
  if (target.empty()) {
    std::string dir;
    if (const char* env = std::getenv("JSI_METRICS_DIR")) dir = env;
    if (!dir.empty() && dir.back() != '/') dir += '/';
    target = dir + "BENCH_" + name + ".json";
  }
  std::ofstream os(target);
  if (!os) return "";
  os << "{\"benchmark\":";
  std::ostringstream quoted;
  quoted << '"' << name << '"';
  os << quoted.str() << ",\"metrics\":" << global_registry().to_json() << "}\n";
  return os ? target : "";
}

}  // namespace jsi::obs
