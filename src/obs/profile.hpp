#ifndef JSI_OBS_PROFILE_HPP
#define JSI_OBS_PROFILE_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "obs/registry.hpp"
#include "obs/telemetry.hpp"

namespace jsi::obs {

/// One campaign unit's deterministic cost summary — the slice of a
/// core::UnitOutcome the profile report needs. Kept as a neutral struct
/// so obs stays below core in the layering (core adapts its results into
/// this; see scenario::render_profile).
struct ProfileUnit {
  std::string name;
  std::uint64_t total_tcks = 0;
  std::uint64_t generation_tcks = 0;
  std::uint64_t observation_tcks = 0;
  bool violation = false;
  bool failed = false;
};

struct ProfileOptions {
  std::size_t top_k = 5;  ///< slowest-unit list length
  /// TCK period used to convert TCK budgets into estimated wall time —
  /// the same knob the tracer stamps t_ps with.
  std::uint64_t tck_period_ps = 10'000;
};

/// Render the post-run profile of a merged campaign transcript:
/// TCK/wall-time split by phase (generation vs observation) and by TAP
/// state, sessions by kind, per-TapOp latency summaries (count / mean /
/// p50 / p95 from the op.tcks histogram), the top-k slowest units by
/// TCK count, bus table/memo hit rates, and — when a final telemetry
/// snapshot is supplied — measured per-worker busy/idle utilization.
/// Deterministic for everything derived from `units` and `merged`; only
/// the telemetry block carries wall-clock numbers.
std::string profile_report(const std::vector<ProfileUnit>& units,
                           const Registry& merged,
                           const Snapshot* telemetry = nullptr,
                           const ProfileOptions& opt = {});

}  // namespace jsi::obs

#endif  // JSI_OBS_PROFILE_HPP
