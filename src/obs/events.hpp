#ifndef JSI_OBS_EVENTS_HPP
#define JSI_OBS_EVENTS_HPP

#include <cstdint>

namespace jsi::obs {

/// The event taxonomy every instrumented layer speaks — one record type
/// shared by the TAP driver, the protocol monitor, the test-plan engine,
/// the SoC models, the coupled bus, the detectors, and the event kernel.
/// A structured trace is just the ordered stream of these records; the
/// metrics registry is a fold over the same stream.
enum class EventKind : std::uint8_t {
  SessionBegin,       ///< a test session starts (name = session kind)
  SessionEnd,         ///< value = TCKs the session consumed
  PlanBegin,          ///< engine starts a TestPlan (a = ops, b = buses)
  PlanEnd,            ///< engine totals: value = total, a = gen, b = obs TCKs
  TapOpBegin,         ///< one TapOp starts (name = kind, a = op index,
                      ///< b = 1 when the op is an observation read-out)
  TapOpEnd,           ///< value = TCKs the op consumed
  StateEdge,          ///< one TCK edge (name = acting TAP state, phase set,
                      ///< a = TMS, b = TDI)
  BusTransition,      ///< a driven bus vector changed (a = bus index,
                      ///< value = cumulative transition count)
  CacheLookup,        ///< bus waveform cache probe (a = 1 hit / 0 miss)
  DetectorFired,      ///< sticky sensor flag newly latched (name = "ND"/"SD",
                      ///< a = wire, b = bus or -1)
  SchedulerRun,       ///< event-kernel drain finished (value = events run)
  ProtocolViolation,  ///< 1149.1 monitor rule broken (a = violation index)
  Mark,               ///< free-form user annotation
};
inline constexpr int kEventKindCount = static_cast<int>(EventKind::Mark) + 1;

const char* event_kind_name(EventKind k);

/// Micro-phase of one TCK edge, classified from the acting controller
/// state. `Other` covers navigation states (Select/Exit/Idle/Reset).
enum class TckPhase : std::uint8_t { Shift, Capture, Update, Pause, Other };
inline constexpr int kTckPhaseCount = static_cast<int>(TckPhase::Other) + 1;

const char* tck_phase_name(TckPhase p);

/// One trace record. Producers fill what they know and leave the rest at
/// the defaults; a Hub stamps missing clocks from the last TCK-bearing
/// event so detector/cache events landing mid-scan inherit the edge that
/// caused them. `name` must point at static-lifetime storage (state
/// names, op-kind names, "ND"/"SD") — records are copied into ring
/// buffers and may outlive any plan or session object.
struct Event {
  static constexpr std::uint64_t kNoStamp = ~std::uint64_t{0};

  EventKind kind = EventKind::Mark;
  TckPhase phase = TckPhase::Other;  ///< StateEdge only
  std::uint64_t tck = kNoStamp;      ///< producer's TCK counter
  std::uint64_t time_ps = kNoStamp;  ///< VCD cross-link (tck * TCK period)
  const char* name = "";             ///< static-lifetime label
  std::int64_t a = -1;               ///< small payload (see EventKind docs)
  std::int64_t b = -1;
  std::uint64_t value = 0;           ///< counts / TCK totals
};

/// Consumer of the event stream. Instrumented components hold a plain
/// `Sink*` that defaults to nullptr, so the disabled path is one
/// predicted-not-taken branch per would-be event — no virtual call, no
/// record construction (the "<2% when disabled" guarantee, pinned by
/// `bench/obs_overhead_guard`).
class Sink {
 public:
  virtual ~Sink() = default;
  virtual void on_event(const Event& e) = 0;
};

/// Accepts and discards everything: the attached-but-inert baseline the
/// overhead guard compares the detached path against.
class NullSink final : public Sink {
 public:
  void on_event(const Event&) override {}
};

/// Convenience emitter for span-style records (SessionBegin/End and
/// friends); no-op when `sink` is nullptr.
inline void emit_span(Sink* sink, EventKind kind, const char* name,
                      std::uint64_t tck, std::uint64_t value = 0) {
  if (!sink) return;
  Event e;
  e.kind = kind;
  e.tck = tck;
  e.name = name;
  e.value = value;
  sink->on_event(e);
}

}  // namespace jsi::obs

#endif  // JSI_OBS_EVENTS_HPP
