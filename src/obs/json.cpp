#include "obs/json.hpp"

#include <cctype>
#include <cstdlib>

namespace jsi::obs::json {

const Value* Value::find(const std::string& key) const {
  if (type != Type::Object) return nullptr;
  for (const auto& [k, v] : object) {
    if (k == key) return &v;
  }
  return nullptr;
}

namespace {

class Parser {
 public:
  Parser(std::string_view text, std::string* error)
      : text_(text), error_(error) {}

  std::optional<Value> run() {
    skip_ws();
    Value v;
    if (!parse_value(v)) return std::nullopt;
    skip_ws();
    if (pos_ != text_.size()) {
      fail("trailing characters after document");
      return std::nullopt;
    }
    return v;
  }

 private:
  bool fail(const std::string& what) {
    if (error_ && error_->empty()) {
      *error_ = what + " at offset " + std::to_string(pos_);
    }
    return false;
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool eat(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  bool parse_value(Value& out) {
    if (pos_ >= text_.size()) return fail("unexpected end of input");
    switch (text_[pos_]) {
      case '{': return parse_object(out);
      case '[': return parse_array(out);
      case '"':
        out.type = Value::Type::String;
        return parse_string(out.str);
      case 't':
        out.type = Value::Type::Bool;
        out.boolean = true;
        return literal("true") || fail("bad literal");
      case 'f':
        out.type = Value::Type::Bool;
        out.boolean = false;
        return literal("false") || fail("bad literal");
      case 'n':
        out.type = Value::Type::Null;
        return literal("null") || fail("bad literal");
      default: return parse_number(out);
    }
  }

  bool parse_object(Value& out) {
    out.type = Value::Type::Object;
    ++pos_;  // '{'
    skip_ws();
    if (eat('}')) return true;
    while (true) {
      skip_ws();
      std::string key;
      if (pos_ >= text_.size() || text_[pos_] != '"' || !parse_string(key)) {
        return fail("expected object key");
      }
      skip_ws();
      if (!eat(':')) return fail("expected ':'");
      skip_ws();
      Value v;
      if (!parse_value(v)) return false;
      out.object.emplace_back(std::move(key), std::move(v));
      skip_ws();
      if (eat(',')) continue;
      if (eat('}')) return true;
      return fail("expected ',' or '}'");
    }
  }

  bool parse_array(Value& out) {
    out.type = Value::Type::Array;
    ++pos_;  // '['
    skip_ws();
    if (eat(']')) return true;
    while (true) {
      skip_ws();
      Value v;
      if (!parse_value(v)) return false;
      out.array.push_back(std::move(v));
      skip_ws();
      if (eat(',')) continue;
      if (eat(']')) return true;
      return fail("expected ',' or ']'");
    }
  }

  bool parse_string(std::string& out) {
    ++pos_;  // opening quote
    out.clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (c == '\\') {
        if (pos_ >= text_.size()) return fail("bad escape");
        const char esc = text_[pos_++];
        switch (esc) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'n': out += '\n'; break;
          case 't': out += '\t'; break;
          case 'r': out += '\r'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'u': {
            // Validated but mapped to '?' — the exporters never emit
            // \u escapes, this only keeps foreign files parseable.
            for (int i = 0; i < 4; ++i) {
              if (pos_ >= text_.size() ||
                  !std::isxdigit(static_cast<unsigned char>(text_[pos_]))) {
                return fail("bad \\u escape");
              }
              ++pos_;
            }
            out += '?';
            break;
          }
          default: return fail("bad escape");
        }
        continue;
      }
      out += c;
    }
    return fail("unterminated string");
  }

  bool parse_number(Value& out) {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return fail("expected value");
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    out.number = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) return fail("bad number");
    out.type = Value::Type::Number;
    return true;
  }

  std::string_view text_;
  std::string* error_;
  std::size_t pos_ = 0;
};

}  // namespace

std::optional<Value> parse(std::string_view text, std::string* error) {
  if (error) error->clear();
  return Parser(text, error).run();
}

}  // namespace jsi::obs::json
