#ifndef JSI_OBS_TRACER_HPP
#define JSI_OBS_TRACER_HPP

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "obs/events.hpp"

namespace jsi::obs {

/// Write one stamped event as a single JSONL record (trailing newline):
///   {"kind":"TapOpBegin","tck":12,"t_ps":120000,"name":"ScanDr",...}
/// The exact format Tracer::write_jsonl emits per event — exposed so other
/// renderers (the campaign artifact writer) stay byte-identical with it.
void write_event_jsonl(std::ostream& os, const Event& e);

/// What the tracer keeps and how it stamps time.
struct TracerConfig {
  std::size_t capacity = 1 << 16;  ///< ring entries; oldest dropped when full
  bool tap_edges = true;      ///< keep per-TCK StateEdge records
  bool cache_lookups = false;  ///< keep per-probe CacheLookup records (noisy)
  /// TCK period used to stamp `time_ps` on records that lack one — the
  /// cross-link into VCD dumps written on the same timebase (default
  /// 10 ns = a 100 MHz test clock).
  std::uint64_t tck_period_ps = 10'000;
};

/// Structured trace recorder: a bounded ring of typed Events, exportable
/// as JSONL (one record per line, greppable) and as Chrome trace_event
/// JSON loadable in Perfetto / chrome://tracing. Span pairs
/// (Session/Plan/TapOp Begin+End) become duration slices; detector
/// firings and bus transitions become instant markers carrying their VCD
/// timestamp in `args`.
class Tracer final : public Sink {
 public:
  Tracer() : Tracer(TracerConfig{}) {}
  explicit Tracer(TracerConfig cfg);

  const TracerConfig& config() const { return cfg_; }

  void on_event(const Event& e) override;

  /// Retained records, oldest first.
  std::vector<Event> events() const;

  std::uint64_t recorded() const { return recorded_; }
  std::uint64_t dropped() const { return dropped_; }
  std::uint64_t last_tck() const { return last_tck_; }

  void clear();

  /// One JSON object per line:
  ///   {"kind":"TapOpBegin","tck":12,"t_ps":120000,"name":"ScanDr",...}
  void write_jsonl(std::ostream& os) const;

  /// Chrome trace_event format ({"traceEvents":[...]}); `ts` is in
  /// microseconds of TCK time (tck * period). StateEdge records are
  /// summarized away (they would swamp the viewer); everything else maps
  /// to B/E duration slices or instant events, plus ph:"C" counter
  /// samples (cumulative tck, bus-transition count, detector firings) so
  /// Perfetto renders live-rate tracks next to the spans.
  void write_chrome_trace(std::ostream& os) const;

 private:
  void push(const Event& e);

  TracerConfig cfg_;
  std::vector<Event> ring_;
  std::size_t head_ = 0;  // oldest slot once the ring is full
  std::uint64_t recorded_ = 0;
  std::uint64_t dropped_ = 0;
  std::uint64_t last_tck_ = 0;
};

}  // namespace jsi::obs

#endif  // JSI_OBS_TRACER_HPP
