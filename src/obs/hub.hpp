#ifndef JSI_OBS_HUB_HPP
#define JSI_OBS_HUB_HPP

#include <vector>

#include "obs/events.hpp"
#include "obs/metrics_sink.hpp"
#include "obs/registry.hpp"
#include "obs/tracer.hpp"

namespace jsi::obs {

/// The one-stop observer a session attaches: owns a Tracer and a metrics
/// Registry, stamps incoming events with the last-seen TCK (so records
/// from layers that have no clock — detectors, the bus cache — inherit
/// the edge that caused them), and fans the stamped stream out to the
/// tracer, the metrics fold, and any extra sinks.
class Hub final : public Sink {
 public:
  Hub() : Hub(TracerConfig{}) {}
  explicit Hub(TracerConfig cfg)
      : tracer_(cfg), metrics_(registry_), period_ps_(cfg.tck_period_ps) {}

  Tracer& tracer() { return tracer_; }
  const Tracer& tracer() const { return tracer_; }
  Registry& registry() { return registry_; }
  const Registry& registry() const { return registry_; }
  MetricsSink& metrics() { return metrics_; }

  /// Strict TCK-accounting cross-check (throws on mismatch) — see
  /// MetricsSink.
  void set_strict(bool on) { metrics_.set_strict(on); }

  /// Additional fan-out target (not owned). Receives stamped events.
  void add_sink(Sink* s) { extra_.push_back(s); }

  /// Return the hub to its just-constructed observation state: metrics
  /// zeroed (names kept), tracer ring cleared, TCK stamping restarted
  /// from zero, any in-flight plan accounting dropped. Extra sinks stay
  /// attached and are not reset (they aggregate across resets). Campaign
  /// workers call this between work units so every unit is observed from
  /// an identical starting state regardless of which worker runs it.
  void reset() {
    registry_.reset();
    metrics_.reset_plan_state();
    tracer_.clear();
    last_tck_ = 0;
  }

  void on_event(const Event& e) override {
    Event stamped = e;
    if (stamped.tck == Event::kNoStamp) {
      stamped.tck = last_tck_;
    } else {
      last_tck_ = stamped.tck;
    }
    if (stamped.time_ps == Event::kNoStamp) {
      stamped.time_ps = stamped.tck * period_ps_;
    }
    metrics_.on_event(stamped);
    tracer_.on_event(stamped);
    for (Sink* s : extra_) s->on_event(stamped);
  }

 private:
  Registry registry_;
  Tracer tracer_;
  MetricsSink metrics_;
  std::vector<Sink*> extra_;
  std::uint64_t period_ps_;
  std::uint64_t last_tck_ = 0;
};

}  // namespace jsi::obs

#endif  // JSI_OBS_HUB_HPP
