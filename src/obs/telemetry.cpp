#include "obs/telemetry.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <iostream>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "obs/json.hpp"

namespace jsi::obs {

namespace {

using json::write_number;

double rate_per_sec(std::uint64_t count, std::uint64_t elapsed_ms) {
  // Clamp the denominator to 1 ms: a campaign finishing inside the
  // clock's first millisecond still reports a finite, nonzero rate for
  // any nonzero count.
  return static_cast<double>(count) * 1000.0 /
         static_cast<double>(std::max<std::uint64_t>(elapsed_ms, 1));
}

double hit_rate(std::uint64_t hits, std::uint64_t misses) {
  const std::uint64_t total = hits + misses;
  if (total == 0) return 0.0;
  return static_cast<double>(hits) / static_cast<double>(total);
}

}  // namespace

void write_snapshot_jsonl(std::ostream& os, const Snapshot& s) {
  os << "{\"schema\":\"jsi.telemetry.v" << Snapshot::kSchemaVersion
     << "\",\"seq\":" << s.seq << ",\"wall_ms\":" << s.wall_ms
     << ",\"t_ms\":" << s.t_ms << ",\"units_total\":" << s.units_total
     << ",\"units_done\":" << s.units_done
     << ",\"units_running\":" << s.units_running
     << ",\"units_per_sec\":";
  write_number(os, s.units_per_sec);
  os << ",\"transitions\":" << s.transitions << ",\"transitions_per_sec\":";
  write_number(os, s.transitions_per_sec);
  os << ",\"tcks\":" << s.tcks << ",\"tcks_per_sec\":";
  write_number(os, s.tcks_per_sec);
  os << ",\"table_hit_rate\":";
  write_number(os, s.table_hit_rate);
  os << ",\"memo_hit_rate\":";
  write_number(os, s.memo_hit_rate);
  os << ",\"workers\":[";
  for (std::size_t i = 0; i < s.workers.size(); ++i) {
    const WorkerSnapshot& w = s.workers[i];
    if (i) os << ',';
    os << "{\"worker\":" << w.worker
       << ",\"units_started\":" << w.units_started
       << ",\"units_done\":" << w.units_completed
       << ",\"busy_ns\":" << w.busy_ns << ",\"idle_ns\":" << w.idle_ns
       << ",\"utilization\":";
    write_number(os, w.utilization);
    os << ",\"unit\":";
    if (w.current_unit.empty()) {
      os << "null";
    } else {
      json::write_escaped_string(os, w.current_unit);
    }
    os << '}';
  }
  os << "]}\n";
}

std::string render_progress_line(const Snapshot& s) {
  constexpr std::size_t kBarWidth = 20;
  std::ostringstream os;
  const double frac =
      s.units_total == 0
          ? 1.0
          : static_cast<double>(s.units_done) /
                static_cast<double>(s.units_total);
  const std::size_t filled = static_cast<std::size_t>(
      std::min(1.0, std::max(0.0, frac)) * kBarWidth);
  os << '[';
  for (std::size_t i = 0; i < kBarWidth; ++i) {
    os << (i < filled ? '=' : (i == filled ? '>' : '.'));
  }
  os << "] " << s.units_done << '/' << s.units_total << " units | ";
  os.precision(3);
  os << s.units_per_sec << " u/s | eta ";
  if (s.units_per_sec > 0.0 && s.units_done < s.units_total) {
    const double eta_s =
        static_cast<double>(s.units_total - s.units_done) / s.units_per_sec;
    os << eta_s << "s";
  } else {
    os << (s.units_done >= s.units_total ? "0s" : "--");
  }
  double busy = 0.0, total = 0.0;
  for (const WorkerSnapshot& w : s.workers) {
    busy += static_cast<double>(w.busy_ns);
    total += static_cast<double>(w.busy_ns + w.idle_ns);
  }
  os << " | " << s.workers.size() << " worker"
     << (s.workers.size() == 1 ? "" : "s");
  if (total > 0.0) {
    os << ' ' << static_cast<int>(busy / total * 100.0 + 0.5) << "% busy";
  }
  return os.str();
}

Telemetry::Telemetry(TelemetryConfig cfg, std::size_t n_workers,
                     std::size_t units_total)
    : cfg_(std::move(cfg)),
      units_total_(units_total),
      slots_(cfg_.enabled ? std::max<std::size_t>(n_workers, 1) : 0),
      t0_(std::chrono::steady_clock::now()) {}

Telemetry::~Telemetry() { stop(); }

Snapshot Telemetry::sample() {
  Snapshot s;
  s.seq = seq_.fetch_add(1, std::memory_order_relaxed);
  s.wall_ms = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
  s.t_ms = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now() - t0_)
          .count());
  s.units_total = units_total_;

  std::uint64_t table_hits = 0, table_misses = 0;
  std::uint64_t memo_hits = 0, memo_misses = 0;
  s.workers.reserve(slots_.size());
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    const WorkerProgress& p = slots_[i];
    WorkerSnapshot w;
    w.worker = i;
    w.units_started = p.units_started.load(std::memory_order_relaxed);
    w.units_completed = p.units_completed.load(std::memory_order_relaxed);
    w.busy_ns = p.busy_ns.load(std::memory_order_relaxed);
    w.idle_ns = p.idle_ns.load(std::memory_order_relaxed);
    const std::uint64_t timed = w.busy_ns + w.idle_ns;
    w.utilization = timed == 0 ? 0.0
                               : static_cast<double>(w.busy_ns) /
                                     static_cast<double>(timed);
    if (const char* label =
            p.current_unit.load(std::memory_order_relaxed)) {
      w.current_unit = label;
    }
    s.units_done += w.units_completed;
    s.units_running += w.units_started - w.units_completed;
    s.transitions += p.transitions.load(std::memory_order_relaxed);
    s.tcks += p.tcks.load(std::memory_order_relaxed);
    table_hits += p.table_hits.load(std::memory_order_relaxed);
    table_misses += p.table_misses.load(std::memory_order_relaxed);
    memo_hits += p.memo_hits.load(std::memory_order_relaxed);
    memo_misses += p.memo_misses.load(std::memory_order_relaxed);
    s.workers.push_back(std::move(w));
  }
  s.units_per_sec = rate_per_sec(s.units_done, s.t_ms);
  s.transitions_per_sec = rate_per_sec(s.transitions, s.t_ms);
  s.tcks_per_sec = rate_per_sec(s.tcks, s.t_ms);
  s.table_hit_rate = hit_rate(table_hits, table_misses);
  s.memo_hit_rate = hit_rate(memo_hits, memo_misses);
  return s;
}

void Telemetry::emit(const Snapshot& s) {
  const std::lock_guard<std::mutex> lock(mu_);
  // Belt-and-braces monotonicity: sampler and final emits come from
  // different threads; the join already orders them, but the clamp makes
  // "units_done never decreases" a property of the output stream itself.
  Snapshot clamped = s;
  clamped.units_done = std::max(clamped.units_done, last_units_done_);
  last_units_done_ = clamped.units_done;
  if (file_) {
    write_snapshot_jsonl(*file_, clamped);
    file_->flush();
  }
  if (cfg_.sink != nullptr) write_snapshot_jsonl(*cfg_.sink, clamped);
  if (cfg_.progress) {
    std::ostream& os =
        cfg_.progress_stream != nullptr ? *cfg_.progress_stream : std::cerr;
    os << '\r' << render_progress_line(clamped);
    if (clamped.units_done >= clamped.units_total) os << '\n';
    os.flush();
  }
  heartbeats_.fetch_add(1, std::memory_order_relaxed);
}

void Telemetry::start() {
  if (!cfg_.enabled || started_) return;
  if (!cfg_.sink_path.empty()) {
    auto os = std::make_unique<std::ofstream>(cfg_.sink_path,
                                              std::ios::binary);
    if (!*os) {
      throw std::runtime_error("cannot open telemetry sink " +
                               cfg_.sink_path);
    }
    file_ = std::move(os);
  }
  started_ = true;
  t0_ = std::chrono::steady_clock::now();
  emit(sample());  // seq 0: the campaign is announced before it runs
  sampler_ = std::thread([this] { sampler_loop(); });
}

void Telemetry::stop() {
  if (!started_) return;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    stop_requested_ = true;
  }
  cv_.notify_all();
  if (sampler_.joinable()) sampler_.join();
  started_ = false;
  stop_requested_ = false;
  emit(sample());  // the final heartbeat: totals and utilization
  if (file_) file_->flush();
}

void Telemetry::sampler_loop() {
  const auto interval =
      std::chrono::milliseconds(std::max<std::uint64_t>(cfg_.interval_ms, 1));
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    if (cv_.wait_for(lock, interval, [this] { return stop_requested_; })) {
      return;
    }
    lock.unlock();
    emit(sample());
    lock.lock();
  }
}

}  // namespace jsi::obs
