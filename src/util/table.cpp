#include "util/table.hpp"

#include <algorithm>
#include <cstdio>
#include <ostream>
#include <stdexcept>

namespace jsi::util {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

void Table::add_row(std::vector<std::string> cells) {
  if (cells.size() != header_.size()) {
    throw std::invalid_argument("Table row width mismatch");
  }
  rows_.push_back(std::move(cells));
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> w(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) w[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      w[c] = std::max(w[c], row[c].size());
    }
  }
  if (!title_.empty()) os << title_ << '\n';
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c == 0 ? "| " : " | ");
      os << row[c] << std::string(w[c] - row[c].size(), ' ');
    }
    os << " |\n";
  };
  emit(header_);
  os << '|';
  for (std::size_t c = 0; c < header_.size(); ++c) {
    os << std::string(w[c] + 2, '-') << '|';
  }
  os << '\n';
  for (const auto& row : rows_) emit(row);
}

std::ostream& operator<<(std::ostream& os, const Table& t) {
  t.print(os);
  return os;
}

std::string fmt_double(double v, int prec) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", prec, v);
  return buf;
}

std::string fmt_percent(double ratio, int prec) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f%%", prec, ratio * 100.0);
  return buf;
}

}  // namespace jsi::util
