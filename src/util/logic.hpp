#ifndef JSI_UTIL_LOGIC_HPP
#define JSI_UTIL_LOGIC_HPP

#include <cstdint>
#include <iosfwd>
#include <string>

namespace jsi::util {

/// Four-state logic value as used by gate-level and boundary-scan models.
///
/// `X` is "unknown" (uninitialized storage, conflicting drivers), `Z` is
/// "high impedance" (undriven net). Gate evaluation treats `Z` inputs as
/// `X` per common HDL semantics.
enum class Logic : std::uint8_t {
  L0 = 0,  ///< strong logic 0
  L1 = 1,  ///< strong logic 1
  X  = 2,  ///< unknown
  Z  = 3,  ///< high impedance
};

/// True iff `v` is a known binary value (0 or 1).
constexpr bool is_known(Logic v) { return v == Logic::L0 || v == Logic::L1; }

/// Convert a bool to a Logic value.
constexpr Logic to_logic(bool b) { return b ? Logic::L1 : Logic::L0; }

/// Convert a known Logic value to bool; X/Z map to false.
constexpr bool to_bool(Logic v) { return v == Logic::L1; }

/// Logical NOT with X-propagation (Z treated as X).
constexpr Logic l_not(Logic a) {
  if (a == Logic::L0) return Logic::L1;
  if (a == Logic::L1) return Logic::L0;
  return Logic::X;
}

/// Logical AND with X-propagation: 0 dominates.
constexpr Logic l_and(Logic a, Logic b) {
  if (a == Logic::L0 || b == Logic::L0) return Logic::L0;
  if (a == Logic::L1 && b == Logic::L1) return Logic::L1;
  return Logic::X;
}

/// Logical OR with X-propagation: 1 dominates.
constexpr Logic l_or(Logic a, Logic b) {
  if (a == Logic::L1 || b == Logic::L1) return Logic::L1;
  if (a == Logic::L0 && b == Logic::L0) return Logic::L0;
  return Logic::X;
}

/// Logical XOR with X-propagation.
constexpr Logic l_xor(Logic a, Logic b) {
  if (!is_known(a) || !is_known(b)) return Logic::X;
  return to_logic(a != b);
}

/// 2:1 multiplexer with X-propagation. `sel==1` picks `b`, `sel==0` picks
/// `a`; an unknown select yields X unless both inputs agree.
constexpr Logic l_mux(Logic sel, Logic a, Logic b) {
  if (sel == Logic::L0) return a;
  if (sel == Logic::L1) return b;
  if (a == b && is_known(a)) return a;
  return Logic::X;
}

/// Single-character display form: '0', '1', 'X', 'Z'.
char to_char(Logic v);

/// Parse '0','1','x','X','z','Z' into a Logic value; throws
/// std::invalid_argument otherwise.
Logic logic_from_char(char c);

std::ostream& operator<<(std::ostream& os, Logic v);

}  // namespace jsi::util

#endif  // JSI_UTIL_LOGIC_HPP
