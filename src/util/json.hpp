#ifndef JSI_UTIL_JSON_HPP
#define JSI_UTIL_JSON_HPP

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace jsi::util::json {

/// Minimal JSON document model — just enough for the tooling in this
/// repo (scenario files, trace/metrics re-validation; no third-party
/// JSON dependency is available in-tree). Lived in `obs` until the
/// scenario layer needed it; it is a generic utility, so it moved here
/// (`jsi::obs::json` keeps thin aliases for source compatibility).
struct Value {
  enum class Type { Null, Bool, Number, String, Array, Object };

  Type type = Type::Null;
  bool boolean = false;
  double number = 0.0;
  std::string str;
  std::vector<Value> array;
  std::vector<std::pair<std::string, Value>> object;  // insertion order

  bool is_object() const { return type == Type::Object; }
  bool is_array() const { return type == Type::Array; }
  bool is_number() const { return type == Type::Number; }
  bool is_string() const { return type == Type::String; }
  bool is_bool() const { return type == Type::Bool; }
  bool is_null() const { return type == Type::Null; }

  /// First member named `key` (objects only), nullptr when absent.
  const Value* find(const std::string& key) const;

  // -- literal builders (writer-side convenience) ---------------------------

  static Value make_null();
  static Value make_bool(bool b);
  static Value make_number(double n);
  static Value make_string(std::string s);
  static Value make_array();
  static Value make_object();

  /// Append a member to an object under construction (no duplicate-key
  /// check; the writer emits members in insertion order).
  Value& add(std::string key, Value v);

  /// Append an element to an array under construction.
  Value& push(Value v);
};

/// Strict recursive-descent parse of a complete JSON text. On failure
/// returns nullopt and, when `error` is given, a position-annotated
/// message. `\u` escapes are decoded to UTF-8; surrogate pairs must be
/// properly paired (a lone high or low surrogate is a parse error).
std::optional<Value> parse(std::string_view text, std::string* error = nullptr);

/// Write `s` as a quoted JSON string: `"` and `\` are backslash-escaped,
/// control characters (U+0000–U+001F) become \n/\t/\r/\b/\f or \u00XX.
/// Every emitter in the repo funnels through this, so any label is safe
/// on the output side — the strict parser above round-trips it.
void write_escaped_string(std::ostream& os, std::string_view s);

/// Deterministic number rendering shared by every JSON emitter: values
/// that are exactly integral print without a fraction (so counters and
/// configuration integers round-trip byte-identically), everything else
/// gets 12 significant digits.
void write_number(std::ostream& os, double v);

/// Serialize `v` as JSON text. Object members keep their insertion
/// order and the rendering is byte-deterministic: the same Value always
/// produces the same text, which is what scenario-spec round-trip tests
/// pin. `indent` > 0 pretty-prints with that many spaces per level
/// (arrays/objects one element per line); `indent` == 0 emits the
/// compact one-line form.
void write(std::ostream& os, const Value& v, int indent = 0);

/// `write` into a string. Pretty-printed output ends with a newline so
/// serialized files are valid POSIX text files.
std::string to_text(const Value& v, int indent = 0);

}  // namespace jsi::util::json

#endif  // JSI_UTIL_JSON_HPP
