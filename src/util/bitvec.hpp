#ifndef JSI_UTIL_BITVEC_HPP
#define JSI_UTIL_BITVEC_HPP

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

namespace jsi::util {

/// Dynamically sized bit vector used for scan-chain payloads, test vectors
/// and victim-select words.
///
/// Bit 0 is the least-significant / first-scanned bit. `to_string()` prints
/// MSB-first (bit size-1 on the left) matching the way the paper draws
/// vectors like `00000 -> 11011`.
class BitVec {
 public:
  BitVec() = default;

  /// `n` bits, all initialized to `fill`.
  explicit BitVec(std::size_t n, bool fill = false);

  /// Parse an MSB-first string of '0'/'1' characters ("01101").
  /// Underscores are ignored as visual separators. Throws
  /// std::invalid_argument on any other character.
  static BitVec from_string(std::string_view s);

  /// All-zero vector of width `n`.
  static BitVec zeros(std::size_t n) { return BitVec(n, false); }

  /// All-one vector of width `n`.
  static BitVec ones(std::size_t n) { return BitVec(n, true); }

  /// One-hot vector of width `n` with bit `hot` set. Throws
  /// std::out_of_range if `hot >= n`.
  static BitVec one_hot(std::size_t n, std::size_t hot);

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// Read bit `i`; throws std::out_of_range when out of bounds.
  bool get(std::size_t i) const;

  /// Write bit `i`; throws std::out_of_range when out of bounds.
  void set(std::size_t i, bool v);

  /// Unchecked read (used by hot loops after explicit validation).
  bool operator[](std::size_t i) const {
    return (words_[i / kWordBits] >> (i % kWordBits)) & 1u;
  }

  /// Append one bit at the most-significant end.
  void push_back(bool v);

  /// Shift the whole vector one position toward higher indices and insert
  /// `in` at bit 0 — exactly what one Shift-DR TCK does to a scan chain
  /// whose cell 0 is nearest TDI. Returns the bit shifted out of the
  /// most-significant end (toward TDO).
  bool shift_in(bool in);

  /// Number of set bits.
  std::size_t popcount() const;

  /// True iff exactly one bit is set.
  bool is_one_hot() const { return popcount() == 1; }

  /// Bitwise complement (same width).
  BitVec operator~() const;

  BitVec operator&(const BitVec& o) const;
  BitVec operator|(const BitVec& o) const;
  BitVec operator^(const BitVec& o) const;

  bool operator==(const BitVec& o) const;
  bool operator!=(const BitVec& o) const { return !(*this == o); }

  /// Sub-range [pos, pos+len) as a new vector.
  BitVec slice(std::size_t pos, std::size_t len) const;

  /// Concatenation: `this` occupies the low bits, `hi` the high bits.
  BitVec concat(const BitVec& hi) const;

  /// In-place order reversal (bit 0 swaps with bit size-1).
  void reverse();

  /// MSB-first textual form, e.g. "01101".
  std::string to_string() const;

  /// Interpret the low 64 bits as an unsigned integer.
  std::uint64_t to_u64() const;

  /// Build from the low `n` bits of `v` (bit 0 = LSB of `v`).
  static BitVec from_u64(std::uint64_t v, std::size_t n);

 private:
  static constexpr std::size_t kWordBits = 64;
  void check(std::size_t i) const;
  void trim();

  std::size_t size_ = 0;
  std::vector<std::uint64_t> words_;
};

std::ostream& operator<<(std::ostream& os, const BitVec& v);

}  // namespace jsi::util

#endif  // JSI_UTIL_BITVEC_HPP
