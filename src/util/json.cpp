#include "util/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdlib>
#include <ostream>
#include <sstream>

namespace jsi::util::json {

const Value* Value::find(const std::string& key) const {
  if (type != Type::Object) return nullptr;
  for (const auto& [k, v] : object) {
    if (k == key) return &v;
  }
  return nullptr;
}

Value Value::make_null() { return Value{}; }

Value Value::make_bool(bool b) {
  Value v;
  v.type = Type::Bool;
  v.boolean = b;
  return v;
}

Value Value::make_number(double n) {
  Value v;
  v.type = Type::Number;
  v.number = n;
  return v;
}

Value Value::make_string(std::string s) {
  Value v;
  v.type = Type::String;
  v.str = std::move(s);
  return v;
}

Value Value::make_array() {
  Value v;
  v.type = Type::Array;
  return v;
}

Value Value::make_object() {
  Value v;
  v.type = Type::Object;
  return v;
}

Value& Value::add(std::string key, Value v) {
  object.emplace_back(std::move(key), std::move(v));
  return *this;
}

Value& Value::push(Value v) {
  array.push_back(std::move(v));
  return *this;
}

namespace {

/// Append one Unicode scalar value as UTF-8 (cp is already validated to
/// be <= 0x10FFFF and not a surrogate).
void append_utf8(std::string& out, std::uint32_t cp) {
  if (cp < 0x80) {
    out += static_cast<char>(cp);
  } else if (cp < 0x800) {
    out += static_cast<char>(0xC0 | (cp >> 6));
    out += static_cast<char>(0x80 | (cp & 0x3F));
  } else if (cp < 0x10000) {
    out += static_cast<char>(0xE0 | (cp >> 12));
    out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
    out += static_cast<char>(0x80 | (cp & 0x3F));
  } else {
    out += static_cast<char>(0xF0 | (cp >> 18));
    out += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
    out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
    out += static_cast<char>(0x80 | (cp & 0x3F));
  }
}

bool is_high_surrogate(std::uint32_t cp) { return cp >= 0xD800 && cp <= 0xDBFF; }
bool is_low_surrogate(std::uint32_t cp) { return cp >= 0xDC00 && cp <= 0xDFFF; }

class Parser {
 public:
  Parser(std::string_view text, std::string* error)
      : text_(text), error_(error) {}

  std::optional<Value> run() {
    skip_ws();
    Value v;
    if (!parse_value(v)) return std::nullopt;
    skip_ws();
    if (pos_ != text_.size()) {
      fail("trailing characters after document");
      return std::nullopt;
    }
    return v;
  }

 private:
  bool fail(const std::string& what) {
    if (error_ && error_->empty()) {
      *error_ = what + " at offset " + std::to_string(pos_);
    }
    return false;
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool eat(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  bool parse_value(Value& out) {
    if (pos_ >= text_.size()) return fail("unexpected end of input");
    switch (text_[pos_]) {
      case '{': return parse_object(out);
      case '[': return parse_array(out);
      case '"':
        out.type = Value::Type::String;
        return parse_string(out.str);
      case 't':
        out.type = Value::Type::Bool;
        out.boolean = true;
        return literal("true") || fail("bad literal");
      case 'f':
        out.type = Value::Type::Bool;
        out.boolean = false;
        return literal("false") || fail("bad literal");
      case 'n':
        out.type = Value::Type::Null;
        return literal("null") || fail("bad literal");
      default: return parse_number(out);
    }
  }

  bool parse_object(Value& out) {
    out.type = Value::Type::Object;
    ++pos_;  // '{'
    skip_ws();
    if (eat('}')) return true;
    while (true) {
      skip_ws();
      std::string key;
      if (pos_ >= text_.size() || text_[pos_] != '"' || !parse_string(key)) {
        return fail("expected object key");
      }
      skip_ws();
      if (!eat(':')) return fail("expected ':'");
      skip_ws();
      Value v;
      if (!parse_value(v)) return false;
      out.object.emplace_back(std::move(key), std::move(v));
      skip_ws();
      if (eat(',')) continue;
      if (eat('}')) return true;
      return fail("expected ',' or '}'");
    }
  }

  bool parse_array(Value& out) {
    out.type = Value::Type::Array;
    ++pos_;  // '['
    skip_ws();
    if (eat(']')) return true;
    while (true) {
      skip_ws();
      Value v;
      if (!parse_value(v)) return false;
      out.array.push_back(std::move(v));
      skip_ws();
      if (eat(',')) continue;
      if (eat(']')) return true;
      return fail("expected ',' or ']'");
    }
  }

  bool parse_string(std::string& out) {
    ++pos_;  // opening quote
    out.clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (c == '\\') {
        if (pos_ >= text_.size()) return fail("bad escape");
        const char esc = text_[pos_++];
        switch (esc) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'n': out += '\n'; break;
          case 't': out += '\t'; break;
          case 'r': out += '\r'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'u': {
            // Decode to UTF-8, pairing surrogates. A lone high or low
            // surrogate is malformed input, not something to paper over:
            // this parser validates our own emitted traces, so a lax
            // decode here would hide emitter bugs.
            std::uint32_t cp;
            if (!parse_hex4(cp)) return fail("bad \\u escape");
            if (is_low_surrogate(cp)) {
              return fail("lone low surrogate in \\u escape");
            }
            if (is_high_surrogate(cp)) {
              if (pos_ + 1 >= text_.size() || text_[pos_] != '\\' ||
                  text_[pos_ + 1] != 'u') {
                return fail("unpaired high surrogate in \\u escape");
              }
              pos_ += 2;
              std::uint32_t lo;
              if (!parse_hex4(lo)) return fail("bad \\u escape");
              if (!is_low_surrogate(lo)) {
                return fail("unpaired high surrogate in \\u escape");
              }
              cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
            }
            append_utf8(out, cp);
            break;
          }
          default: return fail("bad escape");
        }
        continue;
      }
      out += c;
    }
    return fail("unterminated string");
  }

  /// Four hex digits at pos_ -> code unit; advances past them on success.
  bool parse_hex4(std::uint32_t& out) {
    if (pos_ + 4 > text_.size()) return false;
    out = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_];
      std::uint32_t digit;
      if (c >= '0' && c <= '9') {
        digit = static_cast<std::uint32_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        digit = static_cast<std::uint32_t>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        digit = static_cast<std::uint32_t>(c - 'A' + 10);
      } else {
        return false;
      }
      out = (out << 4) | digit;
      ++pos_;
    }
    return true;
  }

  bool parse_number(Value& out) {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return fail("expected value");
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    out.number = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) return fail("bad number");
    out.type = Value::Type::Number;
    return true;
  }

  std::string_view text_;
  std::string* error_;
  std::size_t pos_ = 0;
};

class Writer {
 public:
  Writer(std::ostream& os, int indent) : os_(os), indent_(indent) {}

  void value(const Value& v, int depth) {
    switch (v.type) {
      case Value::Type::Null: os_ << "null"; break;
      case Value::Type::Bool: os_ << (v.boolean ? "true" : "false"); break;
      case Value::Type::Number: write_number(os_, v.number); break;
      case Value::Type::String: write_escaped_string(os_, v.str); break;
      case Value::Type::Array: array(v, depth); break;
      case Value::Type::Object: object(v, depth); break;
    }
  }

 private:
  void newline(int depth) {
    if (indent_ <= 0) return;
    os_ << '\n';
    for (int i = 0; i < depth * indent_; ++i) os_ << ' ';
  }

  void array(const Value& v, int depth) {
    if (v.array.empty()) {
      os_ << "[]";
      return;
    }
    os_ << '[';
    for (std::size_t i = 0; i < v.array.size(); ++i) {
      if (i) os_ << ',';
      newline(depth + 1);
      value(v.array[i], depth + 1);
    }
    newline(depth);
    os_ << ']';
  }

  void object(const Value& v, int depth) {
    if (v.object.empty()) {
      os_ << "{}";
      return;
    }
    os_ << '{';
    for (std::size_t i = 0; i < v.object.size(); ++i) {
      if (i) os_ << ',';
      newline(depth + 1);
      write_escaped_string(os_, v.object[i].first);
      os_ << (indent_ > 0 ? ": " : ":");
      value(v.object[i].second, depth + 1);
    }
    newline(depth);
    os_ << '}';
  }

  std::ostream& os_;
  int indent_;
};

}  // namespace

std::optional<Value> parse(std::string_view text, std::string* error) {
  if (error) error->clear();
  return Parser(text, error).run();
}

void write_escaped_string(std::ostream& os, std::string_view s) {
  os << '"';
  for (const char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      case '\r': os << "\\r"; break;
      case '\b': os << "\\b"; break;
      case '\f': os << "\\f"; break;
      default: {
        const unsigned char u = static_cast<unsigned char>(c);
        if (u < 0x20) {
          static const char hex[] = "0123456789abcdef";
          os << "\\u00" << hex[u >> 4] << hex[u & 0xF];
        } else {
          os << c;
        }
        break;
      }
    }
  }
  os << '"';
}

void write_number(std::ostream& os, double v) {
  if (v == static_cast<double>(static_cast<long long>(v)) &&
      std::abs(v) < 1e15) {
    os << static_cast<long long>(v);
  } else {
    std::ostringstream ss;
    ss.precision(12);
    ss << v;
    os << ss.str();
  }
}

void write(std::ostream& os, const Value& v, int indent) {
  Writer(os, indent).value(v, 0);
}

std::string to_text(const Value& v, int indent) {
  std::ostringstream ss;
  write(ss, v, indent);
  if (indent > 0) ss << '\n';
  return ss.str();
}

}  // namespace jsi::util::json
