#include "util/logic.hpp"

#include <ostream>
#include <stdexcept>

namespace jsi::util {

char to_char(Logic v) {
  switch (v) {
    case Logic::L0: return '0';
    case Logic::L1: return '1';
    case Logic::X: return 'X';
    case Logic::Z: return 'Z';
  }
  return '?';
}

Logic logic_from_char(char c) {
  switch (c) {
    case '0': return Logic::L0;
    case '1': return Logic::L1;
    case 'x':
    case 'X': return Logic::X;
    case 'z':
    case 'Z': return Logic::Z;
    default: throw std::invalid_argument(std::string("not a logic char: ") + c);
  }
}

std::ostream& operator<<(std::ostream& os, Logic v) { return os << to_char(v); }

}  // namespace jsi::util
