#ifndef JSI_UTIL_PRNG_HPP
#define JSI_UTIL_PRNG_HPP

#include <cassert>
#include <cstdint>

namespace jsi::util {

/// Small, fast, deterministic PRNG (xoshiro256** by Blackman & Vigna).
///
/// Used everywhere a test, bench, or workload generator needs repeatable
/// pseudo-random stimulus; seeding with the same value always yields the
/// same stream on every platform.
class Prng {
 public:
  explicit Prng(std::uint64_t seed = 0x9E3779B97F4A7C15ull) {
    // SplitMix64 seeding so even seed=0 gives a well-mixed state.
    std::uint64_t z = seed;
    for (auto& s : s_) {
      z += 0x9E3779B97F4A7C15ull;
      std::uint64_t t = z;
      t = (t ^ (t >> 30)) * 0xBF58476D1CE4E5B9ull;
      t = (t ^ (t >> 27)) * 0x94D049BB133111EBull;
      s = t ^ (t >> 31);
    }
  }

  /// Next 64 uniformly random bits.
  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound); Lemire reduction. `bound` must be
  /// > 0 — an empty range has no uniform draw. The contract is asserted
  /// in debug builds; in release builds a zero bound would silently
  /// return 0 while still consuming one stream value, which is never
  /// what the caller meant.
  std::uint64_t next_below(std::uint64_t bound) {
    assert(bound > 0 && "Prng::next_below needs a non-empty range");
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(next_u64()) * bound) >> 64);
  }

  /// Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli draw with probability `p` of true.
  bool next_bool(double p = 0.5) { return next_double() < p; }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t s_[4]{};
};

}  // namespace jsi::util

#endif  // JSI_UTIL_PRNG_HPP
