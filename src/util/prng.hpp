#ifndef JSI_UTIL_PRNG_HPP
#define JSI_UTIL_PRNG_HPP

#include <cassert>
#include <cmath>
#include <cstdint>

namespace jsi::util {

/// Small, fast, deterministic PRNG (xoshiro256** by Blackman & Vigna).
///
/// Used everywhere a test, bench, or workload generator needs repeatable
/// pseudo-random stimulus; seeding with the same value always yields the
/// same stream on every platform.
class Prng {
 public:
  explicit Prng(std::uint64_t seed = 0x9E3779B97F4A7C15ull) {
    // SplitMix64 seeding so even seed=0 gives a well-mixed state.
    std::uint64_t z = seed;
    for (auto& s : s_) {
      z += 0x9E3779B97F4A7C15ull;
      std::uint64_t t = z;
      t = (t ^ (t >> 30)) * 0xBF58476D1CE4E5B9ull;
      t = (t ^ (t >> 27)) * 0x94D049BB133111EBull;
      s = t ^ (t >> 31);
    }
  }

  /// Next 64 uniformly random bits.
  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound); Lemire reduction. `bound` must be
  /// > 0 — an empty range has no uniform draw. The contract is asserted
  /// in debug builds; in release builds a zero bound would silently
  /// return 0 while still consuming one stream value, which is never
  /// what the caller meant.
  std::uint64_t next_below(std::uint64_t bound) {
    assert(bound > 0 && "Prng::next_below needs a non-empty range");
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(next_u64()) * bound) >> 64);
  }

  /// Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli draw with probability `p` of true.
  bool next_bool(double p = 0.5) { return next_double() < p; }

  /// Standard normal draw (Box-Muller; consumes two stream values).
  double next_normal() {
    // Guard the log against u1 == 0: [2^-53, 1) keeps the transform finite.
    const double u1 = (static_cast<double>(next_u64() >> 11) + 1.0) * 0x1.0p-53;
    const double u2 = next_double();
    return std::sqrt(-2.0 * std::log(u1)) *
           std::cos(2.0 * 3.141592653589793238462643383279502884 * u2);
  }

  /// A deterministically derived child generator for stream `index`.
  /// Does NOT consume or mutate this generator's state: `split(i)` is a
  /// pure function of (current state, i), so any child stream can be
  /// reconstructed in isolation — the per-unit seed derivation of sweep
  /// campaigns depends on exactly this (worker k can materialize unit i
  /// without replaying units 0..i-1). Distinct indices give decorrelated
  /// streams even for adjacent indices (SplitMix64 finalizer over the
  /// four state words and the index). The child stream is pinned by
  /// tests/util/test_prng.cpp; changing this derivation invalidates every
  /// published sweep result.
  Prng split(std::uint64_t index) const {
    std::uint64_t h = mix64(s_[0] + 0x9E3779B97F4A7C15ull * (index + 1));
    h = mix64(h ^ s_[1]);
    h = mix64(h ^ s_[2]);
    h = mix64(h ^ s_[3]);
    return Prng(h);
  }

  /// Advance 2^128 steps (the canonical xoshiro256** jump polynomial):
  /// the classic way to hand each of up to 2^128 sequential consumers a
  /// non-overlapping subsequence. `split()` is preferred for indexed
  /// per-unit derivation (O(1) random access); `jump()` serves consumers
  /// that walk streams in order.
  void jump() {
    static constexpr std::uint64_t kJump[] = {
        0x180ec6d33cfd0abaull, 0xd5a61266f0c9392cull, 0xa9582618e03fc9aaull,
        0x39abdc4529b1661cull};
    std::uint64_t s0 = 0, s1 = 0, s2 = 0, s3 = 0;
    for (const std::uint64_t jump : kJump) {
      for (int b = 0; b < 64; ++b) {
        if (jump & (std::uint64_t{1} << b)) {
          s0 ^= s_[0];
          s1 ^= s_[1];
          s2 ^= s_[2];
          s3 ^= s_[3];
        }
        next_u64();
      }
    }
    s_[0] = s0;
    s_[1] = s1;
    s_[2] = s2;
    s_[3] = s3;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  /// SplitMix64 finalizer (also the seeding mixer above).
  static constexpr std::uint64_t mix64(std::uint64_t z) {
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
  }
  std::uint64_t s_[4]{};
};

}  // namespace jsi::util

#endif  // JSI_UTIL_PRNG_HPP
