#include "util/bitvec.hpp"

#include <algorithm>
#include <bit>
#include <ostream>
#include <stdexcept>

namespace jsi::util {

BitVec::BitVec(std::size_t n, bool fill) : size_(n) {
  words_.assign((n + kWordBits - 1) / kWordBits, fill ? ~0ull : 0ull);
  trim();
}

BitVec BitVec::from_string(std::string_view s) {
  BitVec v;
  std::size_t bits = 0;
  for (char c : s) {
    if (c != '_') ++bits;
  }
  v = BitVec(bits, false);
  std::size_t i = bits;  // MSB-first: first char is the highest index.
  for (char c : s) {
    if (c == '_') continue;
    --i;
    if (c == '1') {
      v.set(i, true);
    } else if (c != '0') {
      throw std::invalid_argument(std::string("bad bit char: ") + c);
    }
  }
  return v;
}

BitVec BitVec::one_hot(std::size_t n, std::size_t hot) {
  BitVec v(n, false);
  v.set(hot, true);
  return v;
}

void BitVec::check(std::size_t i) const {
  if (i >= size_) throw std::out_of_range("BitVec index out of range");
}

void BitVec::trim() {
  const std::size_t rem = size_ % kWordBits;
  if (rem != 0 && !words_.empty()) {
    words_.back() &= (1ull << rem) - 1;
  }
}

bool BitVec::get(std::size_t i) const {
  check(i);
  return (*this)[i];
}

void BitVec::set(std::size_t i, bool v) {
  check(i);
  const std::uint64_t mask = 1ull << (i % kWordBits);
  if (v) {
    words_[i / kWordBits] |= mask;
  } else {
    words_[i / kWordBits] &= ~mask;
  }
}

void BitVec::push_back(bool v) {
  if (size_ % kWordBits == 0) words_.push_back(0);
  ++size_;
  set(size_ - 1, v);
}

bool BitVec::shift_in(bool in) {
  if (size_ == 0) return in;
  const bool out = (*this)[size_ - 1];
  std::uint64_t carry = in ? 1u : 0u;
  for (auto& w : words_) {
    const std::uint64_t next = w >> (kWordBits - 1);
    w = (w << 1) | carry;
    carry = next;
  }
  trim();
  return out;
}

std::size_t BitVec::popcount() const {
  std::size_t n = 0;
  for (auto w : words_) n += static_cast<std::size_t>(std::popcount(w));
  return n;
}

BitVec BitVec::operator~() const {
  BitVec r(*this);
  for (auto& w : r.words_) w = ~w;
  r.trim();
  return r;
}

BitVec BitVec::operator&(const BitVec& o) const {
  if (size_ != o.size_) throw std::invalid_argument("BitVec width mismatch");
  BitVec r(*this);
  for (std::size_t i = 0; i < words_.size(); ++i) r.words_[i] &= o.words_[i];
  return r;
}

BitVec BitVec::operator|(const BitVec& o) const {
  if (size_ != o.size_) throw std::invalid_argument("BitVec width mismatch");
  BitVec r(*this);
  for (std::size_t i = 0; i < words_.size(); ++i) r.words_[i] |= o.words_[i];
  return r;
}

BitVec BitVec::operator^(const BitVec& o) const {
  if (size_ != o.size_) throw std::invalid_argument("BitVec width mismatch");
  BitVec r(*this);
  for (std::size_t i = 0; i < words_.size(); ++i) r.words_[i] ^= o.words_[i];
  return r;
}

bool BitVec::operator==(const BitVec& o) const {
  return size_ == o.size_ && words_ == o.words_;
}

BitVec BitVec::slice(std::size_t pos, std::size_t len) const {
  if (pos + len > size_) throw std::out_of_range("BitVec slice out of range");
  BitVec r(len, false);
  for (std::size_t i = 0; i < len; ++i) r.set(i, (*this)[pos + i]);
  return r;
}

BitVec BitVec::concat(const BitVec& hi) const {
  BitVec r(size_ + hi.size_, false);
  for (std::size_t i = 0; i < size_; ++i) r.set(i, (*this)[i]);
  for (std::size_t i = 0; i < hi.size_; ++i) r.set(size_ + i, hi[i]);
  return r;
}

void BitVec::reverse() {
  for (std::size_t i = 0, j = size_ == 0 ? 0 : size_ - 1; i < j; ++i, --j) {
    const bool a = (*this)[i];
    const bool b = (*this)[j];
    set(i, b);
    set(j, a);
  }
}

std::string BitVec::to_string() const {
  std::string s;
  s.reserve(size_);
  for (std::size_t i = size_; i-- > 0;) s.push_back((*this)[i] ? '1' : '0');
  return s;
}

std::uint64_t BitVec::to_u64() const {
  return words_.empty() ? 0ull : words_[0];
}

BitVec BitVec::from_u64(std::uint64_t v, std::size_t n) {
  BitVec r(n, false);
  for (std::size_t i = 0; i < n && i < kWordBits; ++i) {
    r.set(i, (v >> i) & 1u);
  }
  return r;
}

std::ostream& operator<<(std::ostream& os, const BitVec& v) {
  return os << v.to_string();
}

}  // namespace jsi::util
