#ifndef JSI_UTIL_TABLE_HPP
#define JSI_UTIL_TABLE_HPP

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace jsi::util {

/// Minimal aligned-column ASCII table used by the bench binaries to print
/// the paper's tables in a readable, diffable form.
///
///     Table t({"n", "conventional", "PGBSC", "improvement"});
///     t.add_row({"8", "2304", "131", "94.3%"});
///     std::cout << t;
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Optional caption printed above the table.
  void set_title(std::string title) { title_ = std::move(title); }

  /// Append one row; must have exactly as many cells as the header.
  void add_row(std::vector<std::string> cells);

  /// Render with column alignment, a header rule, and the title if set.
  void print(std::ostream& os) const;

  std::size_t rows() const { return rows_.size(); }

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

std::ostream& operator<<(std::ostream& os, const Table& t);

/// Format a double with `prec` digits after the decimal point.
std::string fmt_double(double v, int prec = 2);

/// Format a ratio as a percentage string, e.g. 0.943 -> "94.3%".
std::string fmt_percent(double ratio, int prec = 1);

}  // namespace jsi::util

#endif  // JSI_UTIL_TABLE_HPP
