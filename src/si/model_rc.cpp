// The full-swing coupled-RC(+L) model — the paper's original bus — moved
// verbatim behind the InterconnectModel seam. Every expression here is
// byte-for-byte the pre-seam TransitionKernel code path; the parity gate
// for this file is that all shipped scenario artifacts are bit-identical
// to pre-refactor output.

#include <algorithm>

#include "si/model.hpp"
#include "si/solver_primitives.hpp"

namespace jsi::si {

namespace {

class RcFullSwingModel final : public InterconnectModel {
 public:
  ModelKind kind() const override { return ModelKind::RcFullSwing; }
  const char* name() const override { return "rc_full_swing"; }

  double high_rail(const BusParams& p) const override { return p.vdd; }

  double settled_threshold(const BusParams& p) const override {
    return p.vdd / 2.0;
  }

  double observed_swing(const BusParams& p) const override { return p.vdd; }

  sim::Time nominal_delay(const BusParams&, double tau) const override {
    return static_cast<sim::Time>(tau * detail::kLn2 / detail::kSecPerTick +
                                  0.5);
  }

  void evaluate(const BusModel& m, const util::BitVec& prev,
                const util::BitVec& next, KernelScratch& scratch,
                double* out) const override {
    const BusParams& p = m.params();
    const std::size_t n = p.n_wires;
    const std::size_t samples = p.samples;
    scratch.delta.resize(n);
    scratch.tau.resize(n);

    // Pass 1 (SoA): classify every wire and compute the switching time
    // constants once. A quiet wire's glitch needs its aggressor's tau; the
    // scalar path recomputes it per neighbor, the batched path reads it
    // back from this array — same primitive, same bits.
    for (std::size_t i = 0; i < n; ++i) {
      scratch.delta[i] = detail::delta_of(prev, next, i);
    }
    for (std::size_t i = 0; i < n; ++i) {
      if (scratch.delta[i] != 0) {
        scratch.tau[i] = detail::switching_tau(m, i, prev, next);
      }
    }

    // Pass 2: flat fill of the contiguous n*samples block.
    const double* couple = m.coupling_data();
    for (std::size_t i = 0; i < n; ++i) {
      double* w = out + i * samples;
      if (scratch.delta[i] != 0) {
        const double v0 = prev[i] ? p.vdd : 0.0;
        const double vf = next[i] ? p.vdd : 0.0;
        detail::fill_switching(m, i, v0, vf, scratch.tau[i], w);
        continue;
      }
      // Quiet wire: rail baseline plus superposed neighbor glitches
      // (left neighbor injected first, matching the scalar path).
      const double rail = prev[i] ? p.vdd : 0.0;
      std::fill_n(w, samples, rail);
      const double ctot_v = m.total_cap_data()[i];
      const double tau_v = m.resistance_data()[i] * ctot_v;
      if (i > 0 && scratch.delta[i - 1] != 0) {
        detail::add_glitch(m, w, p.vdd, couple[i - 1], ctot_v, tau_v,
                           scratch.tau[i - 1], scratch.delta[i - 1]);
      }
      if (i + 1 < n && scratch.delta[i + 1] != 0) {
        detail::add_glitch(m, w, p.vdd, couple[i], ctot_v, tau_v,
                           scratch.tau[i + 1], scratch.delta[i + 1]);
      }
    }
  }

  void solve_wire(const BusModel& m, std::size_t i, const util::BitVec& prev,
                  const util::BitVec& next, double* out) const override {
    const BusParams& p = m.params();
    const int di = detail::delta_of(prev, next, i);
    if (di != 0) {
      const double tau = detail::switching_tau(m, i, prev, next);
      const double v0 = prev[i] ? p.vdd : 0.0;
      const double vf = next[i] ? p.vdd : 0.0;
      detail::fill_switching(m, i, v0, vf, tau, out);
      return;
    }
    // Quiet wire: rail baseline plus superposed neighbor glitches.
    const double rail = prev[i] ? p.vdd : 0.0;
    std::fill_n(out, p.samples, rail);
    const double ctot_v = m.total_cap_data()[i];
    const double tau_v = m.resistance_data()[i] * ctot_v;
    auto inject = [&](std::size_t j, double cc) {
      const int dj = detail::delta_of(prev, next, j);
      if (dj == 0) return;
      const double tau_a = detail::switching_tau(m, j, prev, next);
      detail::add_glitch(m, out, p.vdd, cc, ctot_v, tau_v, tau_a, dj);
    };
    const double* couple = m.coupling_data();
    if (i > 0) inject(i - 1, couple[i - 1]);
    if (i + 1 < p.n_wires) inject(i + 1, couple[i]);
  }

  const std::vector<std::string>& variable_params() const override {
    static const std::vector<std::string> kNames = {
        "vdd", "r_driver", "r_wire", "c_ground", "c_couple", "l_wire"};
    return kNames;
  }
};

}  // namespace

namespace detail {
const InterconnectModel& rc_full_swing_model() {
  static const RcFullSwingModel m;
  return m;
}
}  // namespace detail

}  // namespace jsi::si
