#ifndef JSI_SI_TABLES_HPP
#define JSI_SI_TABLES_HPP

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "si/bus_model.hpp"
#include "si/kernel.hpp"
#include "util/bitvec.hpp"

namespace jsi::si {

/// Precompiled waveforms for the complete MA pattern set of one bus.
///
/// The MAFM scheme drives a tiny, closed workload: 6 faults x n victims,
/// each a fixed (v1, v2) vector pair from `mafm::vectors_for`. Instead of
/// memoizing those transitions as they stream by (the bounded-FIFO memo
/// cache), the table enumerates and solves the whole set up front —
/// "built once per unit, hit always". A lookup is then a single hash
/// probe on the packed (prev, next) pair, serving pointers with zero
/// copies and zero solver work.
///
/// Storage is a neighborhood-deduped waveform pool: a wire's response
/// depends only on its 5-bit local window of (prev, next)
/// (`neighborhood_key`), and across the MA set most windows repeat — the
/// pool holds at most ~36 unique waveforms per wire instead of 6*n*n.
/// Entries store *offsets* into the pool (not pointers), so the table is
/// trivially copyable: `CoupledBus::clone()` carries a warm table to
/// another worker by plain copy.
///
/// Validity is keyed off `BusModel::defect_generation()`: a table built
/// under one generation is dead the moment a defect is injected, and the
/// facade rebuilds lazily on the next batched evaluation.
class TransitionTable {
 public:
  /// Pair keys pack each vector with BitVec::to_u64, so precompilation is
  /// offered for buses up to 64 wires; wider buses (outside the paper's
  /// regime) fall back to the memo path.
  static constexpr std::size_t kMaxTableWires = 64;

  static bool supported(std::size_t n_wires) {
    return n_wires >= 1 && n_wires <= kMaxTableWires;
  }

  /// Enumerate the 6*n MA vector pairs, evaluate each through `kernel`
  /// (the batched flat pass) and store the deduped waveforms. Replaces
  /// any previous contents; stamps the model's current generation.
  void build(const BusModel& m, TransitionKernel& kernel);

  bool built() const { return built_; }

  /// True when the table exists and matches the model's defect state.
  bool fresh(const BusModel& m) const {
    return built_ && built_gen_ == m.defect_generation();
  }

  /// Index of the entry for prev -> next, or `npos` when the pair is not
  /// an MA pattern of this bus.
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);
  std::size_t find(const util::BitVec& prev, const util::BitVec& next) const;

  /// Wire `i`'s samples of entry `e` (from find()). Stable until the next
  /// build() or destruction; clones re-derive from their own pool copy.
  const double* wire_data(std::size_t e, std::size_t i) const {
    return pool_.data() + offsets_[e * n_wires_ + i];
  }

  /// Distinct precompiled (prev, next) pairs resident.
  std::size_t entries() const { return n_entries_; }

  /// Unique waveforms in the dedup pool (memory diagnostics).
  std::size_t pool_waveforms() const {
    return samples_ == 0 ? 0 : pool_.size() / samples_;
  }

  /// Drop everything (e.g. when table lookups are disabled).
  void clear();

 private:
  struct PairKey {
    std::uint64_t prev = 0;
    std::uint64_t next = 0;
    bool operator==(const PairKey& o) const {
      return prev == o.prev && next == o.next;
    }
  };
  struct PairKeyHash {
    std::size_t operator()(const PairKey& k) const {
      // splitmix-style mix of the two words; equality (not the hash)
      // guarantees exactness.
      std::uint64_t h = k.prev * 0x9e3779b97f4a7c15ull;
      h ^= (h >> 32);
      h += k.next * 0xbf58476d1ce4e5b9ull;
      h ^= (h >> 29);
      return static_cast<std::size_t>(h);
    }
  };

  std::unordered_map<PairKey, std::uint32_t, PairKeyHash> index_;
  std::vector<std::uint32_t> offsets_;  // entry e, wire i at [e*n + i]
  std::vector<double> pool_;            // deduped waveform samples
  std::size_t n_wires_ = 0;
  std::size_t samples_ = 0;
  std::size_t n_entries_ = 0;
  std::uint64_t built_gen_ = 0;
  bool built_ = false;
};

}  // namespace jsi::si

#endif  // JSI_SI_TABLES_HPP
