#ifndef JSI_SI_WAVEFORM_HPP
#define JSI_SI_WAVEFORM_HPP

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "sim/time.hpp"

namespace jsi::si {

/// Non-owning view of a uniformly sampled voltage waveform.
///
/// The batched transition kernel writes wire samples into arena- or
/// table-owned storage; a `WaveformView` is the 3-word handle (pointer,
/// length, dt) the detectors and metrics scan without copying. It carries
/// the full read-side API of `Waveform`, and a `Waveform` converts to a
/// view implicitly, so every scanning consumer takes a view and accepts
/// both. Lifetime: a view is valid as long as the storage behind it — for
/// `CoupledBus::transition_batch` results that means until the next batch
/// evaluation, defect mutation or destruction of the bus.
class WaveformView {
 public:
  WaveformView() = default;
  WaveformView(const double* data, std::size_t n, sim::Time dt)
      : data_(data), n_(n), dt_(dt) {}

  sim::Time dt() const { return dt_; }
  std::size_t samples() const { return n_; }
  sim::Time duration() const { return dt_ * n_; }
  const double* data() const { return data_; }

  double operator[](std::size_t i) const { return data_[i]; }

  /// Linear interpolation at absolute time `t` (clamped to the ends).
  double at(sim::Time t) const;

  /// Voltage of the last sample (the settled value).
  double final_value() const { return n_ == 0 ? 0.0 : data_[n_ - 1]; }

  double max_value() const;
  double min_value() const;

  /// Earliest time at/after `from` where the waveform rises to >= `level`;
  /// nullopt if it never does.
  std::optional<sim::Time> first_above(double level, sim::Time from = 0) const;

  /// Earliest time at/after `from` where the waveform falls to <= `level`.
  std::optional<sim::Time> first_below(double level, sim::Time from = 0) const;

  /// The *last* time the waveform crosses `level` (in either direction).
  /// This is the signal's settling instant relative to a receiver threshold:
  /// after it, the value stays on the final side of `level`. nullopt if the
  /// waveform never crosses `level`.
  std::optional<sim::Time> last_crossing(double level) const;

  /// CSV dump "t_ps,volts" (for gnuplot / inspection in benches).
  std::string to_csv() const;

 private:
  const double* data_ = nullptr;
  std::size_t n_ = 0;
  sim::Time dt_ = sim::kPs;
};

/// Uniformly sampled analog voltage waveform (owning).
///
/// The coupled-bus solver emits one `Waveform` per wire per bus transition
/// on the scalar path; the ND/SD detector models then scan it for threshold
/// crossings (via its `WaveformView`). Sampling step defaults to 1 ps which
/// comfortably resolves the ~100 ps RC time constants of the modeled
/// interconnects.
class Waveform {
 public:
  Waveform() = default;

  /// `n` samples spaced `dt` apart, all at `init` volts.
  Waveform(std::size_t n, sim::Time dt, double init = 0.0)
      : dt_(dt), v_(n, init) {}

  /// Materialize (copy) a view into an owning waveform.
  explicit Waveform(WaveformView v)
      : dt_(v.dt()), v_(v.data(), v.data() + v.samples()) {}

  sim::Time dt() const { return dt_; }
  std::size_t samples() const { return v_.size(); }
  sim::Time duration() const { return dt_ * v_.size(); }

  double& operator[](std::size_t i) { return v_[i]; }
  double operator[](std::size_t i) const { return v_[i]; }

  const double* data() const { return v_.data(); }
  double* data() { return v_.data(); }

  /// Non-owning view of this waveform (valid while *this is alive and
  /// unmodified). The implicit conversion lets owning waveforms flow into
  /// every view-taking scanner unchanged.
  WaveformView view() const { return WaveformView(v_.data(), v_.size(), dt_); }
  operator WaveformView() const { return view(); }

  /// Linear interpolation at absolute time `t` (clamped to the ends).
  double at(sim::Time t) const { return view().at(t); }

  /// Voltage of the last sample (the settled value).
  double final_value() const { return v_.empty() ? 0.0 : v_.back(); }

  double max_value() const { return view().max_value(); }
  double min_value() const { return view().min_value(); }

  /// Earliest time at/after `from` where the waveform rises to >= `level`;
  /// nullopt if it never does.
  std::optional<sim::Time> first_above(double level, sim::Time from = 0) const {
    return view().first_above(level, from);
  }

  /// Earliest time at/after `from` where the waveform falls to <= `level`.
  std::optional<sim::Time> first_below(double level, sim::Time from = 0) const {
    return view().first_below(level, from);
  }

  /// The *last* time the waveform crosses `level` (in either direction);
  /// see WaveformView::last_crossing.
  std::optional<sim::Time> last_crossing(double level) const {
    return view().last_crossing(level);
  }

  /// Add `other` sample-by-sample (same dt required; shorter one is
  /// implicitly extended by its final value).
  Waveform& operator+=(const Waveform& other);

  /// Add a constant to every sample.
  Waveform& offset(double dv);

  /// CSV dump "t_ps,volts" (for gnuplot / inspection in benches).
  std::string to_csv() const { return view().to_csv(); }

 private:
  sim::Time dt_ = sim::kPs;
  std::vector<double> v_;
};

}  // namespace jsi::si

#endif  // JSI_SI_WAVEFORM_HPP
