#ifndef JSI_SI_WAVEFORM_HPP
#define JSI_SI_WAVEFORM_HPP

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "sim/time.hpp"

namespace jsi::si {

/// Uniformly sampled analog voltage waveform.
///
/// The coupled-bus solver emits one `Waveform` per wire per bus transition;
/// the ND/SD detector models then scan it for threshold crossings. Sampling
/// step defaults to 1 ps which comfortably resolves the ~100 ps RC time
/// constants of the modeled interconnects.
class Waveform {
 public:
  Waveform() = default;

  /// `n` samples spaced `dt` apart, all at `init` volts.
  Waveform(std::size_t n, sim::Time dt, double init = 0.0)
      : dt_(dt), v_(n, init) {}

  sim::Time dt() const { return dt_; }
  std::size_t samples() const { return v_.size(); }
  sim::Time duration() const { return dt_ * v_.size(); }

  double& operator[](std::size_t i) { return v_[i]; }
  double operator[](std::size_t i) const { return v_[i]; }

  /// Linear interpolation at absolute time `t` (clamped to the ends).
  double at(sim::Time t) const;

  /// Voltage of the last sample (the settled value).
  double final_value() const { return v_.empty() ? 0.0 : v_.back(); }

  double max_value() const;
  double min_value() const;

  /// Earliest time at/after `from` where the waveform rises to >= `level`;
  /// nullopt if it never does.
  std::optional<sim::Time> first_above(double level, sim::Time from = 0) const;

  /// Earliest time at/after `from` where the waveform falls to <= `level`.
  std::optional<sim::Time> first_below(double level, sim::Time from = 0) const;

  /// The *last* time the waveform crosses `level` (in either direction).
  /// This is the signal's settling instant relative to a receiver threshold:
  /// after it, the value stays on the final side of `level`. nullopt if the
  /// waveform never crosses `level`.
  std::optional<sim::Time> last_crossing(double level) const;

  /// Add `other` sample-by-sample (same dt required; shorter one is
  /// implicitly extended by its final value).
  Waveform& operator+=(const Waveform& other);

  /// Add a constant to every sample.
  Waveform& offset(double dv);

  /// CSV dump "t_ps,volts" (for gnuplot / inspection in benches).
  std::string to_csv() const;

 private:
  sim::Time dt_ = sim::kPs;
  std::vector<double> v_;
};

}  // namespace jsi::si

#endif  // JSI_SI_WAVEFORM_HPP
