#ifndef JSI_SI_KERNEL_HPP
#define JSI_SI_KERNEL_HPP

#include <cstddef>
#include <cstdint>
#include <vector>

#include "si/bus_model.hpp"
#include "si/model.hpp"
#include "si/waveform.hpp"
#include "sim/time.hpp"
#include "util/bitvec.hpp"

namespace jsi::si {

/// One evaluated bus transition: a per-wire array of sample pointers into
/// kernel/table-owned storage. Non-owning — the batch (and every
/// `WaveformView` derived from it) is valid until the owning
/// `CoupledBus`'s next `transition_batch` call, defect mutation, clone or
/// destruction.
struct TransitionBatch {
  const double* const* ptrs = nullptr;  ///< ptrs[i] = wire i's samples
  std::size_t n_wires = 0;
  std::size_t samples = 0;
  sim::Time dt = sim::kPs;

  WaveformView wire(std::size_t i) const {
    return WaveformView(ptrs[i], samples, dt);
  }
};

/// Stateless-per-call waveform solver over a `BusModel`'s SoA arrays —
/// a thin dispatcher onto the bus's selected `InterconnectModel`.
///
/// `evaluate()` produces all n wires of one transition into a single
/// contiguous `n * samples` block (wire i at `out + i*samples`); the
/// model's pass 1 classifies every wire and computes the switching time
/// constants into the reusable `KernelScratch`, pass 2 fills the sample
/// block wire-by-wire with tight per-sample loops.
///
/// `solve_wire()` is the scalar reference path: it evaluates one wire
/// exactly as the pre-batching `CoupledBus` solver did. Every model's
/// two paths share the same non-inlined solver primitives
/// (`switching_tau`, the fill and glitch loops), so batched and scalar
/// results are bit-for-bit identical by construction — the differential
/// suites in tests/si/test_bus_properties.cpp and tests/si/test_models.cpp
/// pin this with EXPECT_EQ on doubles for every registered model.
///
/// The only heap state is the reusable pass-1 scratch (sized n, amortized
/// to zero allocations in steady state); sample storage is provided by
/// the caller (arena- or table-backed).
class TransitionKernel {
 public:
  /// Fill `out[0 .. n*samples)` with all wire waveforms of prev -> next.
  /// Width of the vectors must equal `m.n()` (unchecked here; the
  /// `CoupledBus` facade validates).
  void evaluate(const BusModel& m, const util::BitVec& prev,
                const util::BitVec& next, double* out);

  /// Scalar reference: fill `out[0 .. samples)` with wire `i`'s waveform.
  static void solve_wire(const BusModel& m, std::size_t i,
                         const util::BitVec& prev, const util::BitVec& next,
                         double* out);

 private:
  // Pass-1 SoA scratch, reused across evaluate() calls and handed to the
  // model so the indirection adds no per-call allocations.
  KernelScratch scratch_;
};

/// Memo key of wire `i` under transition prev -> next: the wire index plus
/// the 5-bit local neighbourhood [i-2, i+2] of both vectors — the exact
/// electrical support of the per-wire solver (own transition, neighbours'
/// transitions, and *their* neighbours' Miller time constants).
/// Out-of-range positions encode as 0, which the solver ignores. Shared by
/// the `CoupledBus` memo cache and the transition-table builder's
/// waveform dedup pool.
std::uint64_t neighborhood_key(std::size_t n_wires, std::size_t i,
                               const util::BitVec& prev,
                               const util::BitVec& next);

}  // namespace jsi::si

#endif  // JSI_SI_KERNEL_HPP
