#ifndef JSI_SI_DETECTORS_HPP
#define JSI_SI_DETECTORS_HPP

#include <optional>

#include "si/waveform.hpp"
#include "sim/time.hpp"
#include "util/logic.hpp"

namespace jsi::si {

/// Behavioural parameters of the Noise Detector cell (paper Fig 1).
///
/// The physical cell is a cross-coupled PMOS sense amplifier with
/// hysteresis: it fires when the monitored node crosses `V_Hthr` into the
/// vulnerable region and releases only when the node returns below
/// `V_Hmin`. We express both as fractions of Vdd measured as *deviation
/// from the wire's nominal rail*, which covers positive glitches on a low
/// line and negative glitches on a high line with one mirrored pair of
/// thresholds.
struct NdParams {
  double vdd = 1.8;
  double v_hthr_frac = 0.45;     ///< deviation that arms the detector
  double v_hmin_frac = 0.35;     ///< deviation below which it releases
  double overshoot_frac = 0.25;  ///< excursion beyond the rail (> Vdd or
                                 ///< < GND) that also counts as noise
};

/// Behavioural Noise Detector (ND) cell.
///
/// `observe()` scans one receiving-end waveform and sets the sticky flag —
/// the "FF set to 1" of the paper's OBSC — when the signal violates
/// integrity while the cell is enabled (CE=1). The flag survives until
/// `clear()`, matching "if CE=0 the cells are disabled but the captured
/// data in their flip-flops remain unchanged".
class NdCell {
 public:
  explicit NdCell(NdParams p = {}) : p_(p) {}

  const NdParams& params() const { return p_; }

  /// CE signal: when false, observe() leaves the flag untouched.
  void set_enable(bool ce) { ce_ = ce; }
  bool enabled() const { return ce_; }

  /// Scan `w` given the line's driven logic level before (`initial`) and
  /// after (`expected`) the transition. Passing the *driven* final level —
  /// rather than inferring it from the waveform — lets the cell flag a
  /// line that erroneously settles at the wrong rail (e.g. a slow droop).
  /// Takes a non-owning view so batched (arena/table-backed) waveforms
  /// are scanned without copies; an owning `Waveform` converts implicitly.
  void observe(WaveformView w, util::Logic initial, util::Logic expected);

  /// Pure query: would this waveform set the flag? (No state change.)
  bool violates(WaveformView w, util::Logic initial,
                util::Logic expected) const;

  /// Sticky violation flag (the ND flip-flop of the OBSC).
  bool flag() const { return flag_; }

  /// Reset the sticky flip-flop (Test-Logic-Reset / new test session).
  void clear() { flag_ = false; }

 private:
  NdParams p_;
  bool ce_ = false;
  bool flag_ = false;
};

/// Behavioural parameters of the Skew Detector cell (paper Fig 2).
///
/// The physical cell delays the capture clock by a designer-chosen amount
/// (odd inverter chain) and compares it with the interconnect output; a
/// pulse appears when the signal is still in transit after the delayed
/// clock edge. Behaviourally: a transitioning wire must have made its last
/// crossing of the receiver threshold by `skew_budget`, and must settle to
/// the driven value.
struct SdParams {
  double vdd = 1.8;
  sim::Time skew_budget = 150 * sim::kPs;  ///< skew-immune window
  double vth_frac = 0.5;                   ///< receiver threshold
};

/// Behavioural Skew Detector (SD) cell with a sticky violation flip-flop.
class SdCell {
 public:
  explicit SdCell(SdParams p = {}) : p_(p) {}

  const SdParams& params() const { return p_; }

  void set_enable(bool ce) { ce_ = ce; }
  bool enabled() const { return ce_; }

  /// Scan `w` for a wire whose driven value changed from `initial` to
  /// `expected` this cycle. Quiet wires are ND territory and are ignored.
  void observe(WaveformView w, util::Logic initial, util::Logic expected);

  /// Pure query form of observe().
  bool violates(WaveformView w, util::Logic initial,
                util::Logic expected) const;

  /// Arrival instant: the last crossing of the receiver threshold, i.e.
  /// when the transition is finally committed. nullopt if the wire never
  /// crosses (stuck).
  std::optional<sim::Time> arrival_time(WaveformView w) const;

  bool flag() const { return flag_; }
  void clear() { flag_ = false; }

 private:
  SdParams p_;
  bool ce_ = false;
  bool flag_ = false;
};

}  // namespace jsi::si

#endif  // JSI_SI_DETECTORS_HPP
