#ifndef JSI_SI_METRICS_HPP
#define JSI_SI_METRICS_HPP

#include <optional>
#include <string>

#include "si/waveform.hpp"

namespace jsi::si {

/// Signal-integrity figures of merit extracted from one receiving-end
/// waveform — the numbers a characterization report tabulates next to the
/// pass/fail flags the detectors produce.
struct WaveMetrics {
  double v_start = 0.0;  ///< first sample [V]
  double v_final = 0.0;  ///< settled value [V]
  double v_min = 0.0;
  double v_max = 0.0;

  /// 10%-90% rise (or 90%-10% fall) time of the main transition; nullopt
  /// for quiet waveforms.
  std::optional<sim::Time> transition_time;

  /// 50% propagation delay (first crossing); nullopt when never crossing.
  std::optional<sim::Time> delay_50;

  /// Settling instant: last crossing of the 50% threshold.
  std::optional<sim::Time> settle_time;

  /// Peak excursion beyond the final rail (over/undershoot), as a
  /// fraction of the swing; 0 for monotone signals.
  double overshoot_frac = 0.0;

  /// Largest deviation from the rail for quiet waveforms [V]; 0 when the
  /// waveform transitions.
  double glitch_peak = 0.0;

  bool is_transition() const { return transition_time.has_value(); }
};

/// Extract metrics. `vdd` sets the logic thresholds; the waveform is
/// treated as a transition when start and settled values are on opposite
/// sides of vdd/2, as a quiet (possibly glitching) wire otherwise.
/// Takes a non-owning view; an owning `Waveform` converts implicitly.
WaveMetrics measure(WaveformView w, double vdd);

/// One-line human-readable rendering ("rise 83 ps, delay 72 ps, ...").
std::string format_metrics(const WaveMetrics& m);

}  // namespace jsi::si

#endif  // JSI_SI_METRICS_HPP
