#include "si/detectors.hpp"

#include <cmath>

namespace jsi::si {

using util::Logic;

namespace {
/// Settled logic level of the waveform (vdd/2 threshold).
Logic settled(WaveformView w, double vdd) {
  return util::to_logic(w.final_value() >= vdd / 2.0);
}
}  // namespace

bool NdCell::violates(WaveformView w, Logic initial,
                      Logic expected) const {
  const double arm = p_.v_hthr_frac * p_.vdd;
  const double release = p_.v_hmin_frac * p_.vdd;
  const double out_band = p_.overshoot_frac * p_.vdd;

  if (initial == expected) {
    // Quiet wire: any excursion from its driven rail by >= V_Hthr is
    // noise — toward the opposite rail (logic hazard) or beyond the rail
    // (overshoot/undershoot stressing the receiver). A slowly developing
    // level error is just the long-duration limit of the same check.
    const double rail = util::to_bool(expected) ? p_.vdd : 0.0;
    for (std::size_t s = 0; s < w.samples(); ++s) {
      const double dev = w[s] - rail;
      const double inward = util::to_bool(expected) ? -dev : dev;
      if (inward >= arm) return true;                // toward opposite rail
      if (-inward >= out_band && out_band > 0.0) return true;  // outward
    }
    return false;
  }

  // Switching wire: the monotone transit through the vulnerable band is
  // legitimate. Noise = leaving the destination-rail band again after
  // first reaching it (ringing), overshooting beyond the rail, or never
  // settling at the driven level at all.
  if (settled(w, p_.vdd) != expected) return true;
  const double dest = util::to_bool(expected) ? p_.vdd : 0.0;
  bool reached = false;
  for (std::size_t s = 0; s < w.samples(); ++s) {
    const double dev_in = util::to_bool(expected) ? dest - w[s] : w[s] - dest;
    // dev_in > 0: still short of the rail; dev_in < 0: beyond the rail.
    if (!reached) {
      if (std::abs(dev_in) <= release) reached = true;
    } else {
      if (dev_in >= arm) return true;  // fell back toward the old rail
    }
    if (-dev_in >= out_band && out_band > 0.0) return true;  // over/undershoot
  }
  return false;
}

void NdCell::observe(WaveformView w, Logic initial, Logic expected) {
  if (!ce_) return;
  if (violates(w, initial, expected)) flag_ = true;
}

std::optional<sim::Time> SdCell::arrival_time(WaveformView w) const {
  return w.last_crossing(p_.vth_frac * p_.vdd);
}

bool SdCell::violates(WaveformView w, Logic initial,
                      Logic expected) const {
  if (initial == expected) return false;  // quiet wire: ND territory
  if (settled(w, p_.vdd) != expected) return true;  // never arrives
  const auto t = arrival_time(w);
  if (!t.has_value()) return true;  // no committed crossing inside window
  return *t > p_.skew_budget;
}

void SdCell::observe(WaveformView w, Logic initial, Logic expected) {
  if (!ce_) return;
  if (violates(w, initial, expected)) flag_ = true;
}

}  // namespace jsi::si
