#ifndef JSI_SI_SOLVER_PRIMITIVES_HPP
#define JSI_SI_SOLVER_PRIMITIVES_HPP

#include <cstddef>

#include "si/bus_model.hpp"
#include "util/bitvec.hpp"

// The batched and scalar paths of every interconnect model must agree
// bit-for-bit, including under -march=native where the compiler may
// contract a*b+c into FMA differently per inline context. Keeping the
// shared solver primitives out-of-line in one translation unit
// guarantees all callers execute the same machine code.
#if defined(__GNUC__) || defined(__clang__)
#define JSI_NOINLINE __attribute__((noinline))
#else
#define JSI_NOINLINE
#endif

namespace jsi::si::detail {

/// Seconds per sim::Time tick (1 ps).
constexpr double kSecPerTick = 1e-12;
constexpr double kLn2 = 0.6931471805599453;

/// Wire i's transition direction: next - prev in {-1, 0, +1}. Integer
/// math — safe to inline, no FP contraction risk.
inline int delta_of(const util::BitVec& prev, const util::BitVec& next,
                    std::size_t i) {
  const int a = prev[i] ? 1 : 0;
  const int b = next[i] ? 1 : 0;
  return b - a;
}

/// Switching time constant of wire i: R_i times the Miller-weighted
/// coupling capacitance (factor 0 toward a same-phase neighbor, 1 toward
/// a quiet one, 2 toward an opposite-phase one).
JSI_NOINLINE double switching_tau(const BusModel& m, std::size_t i,
                                  const util::BitVec& prev,
                                  const util::BitVec& next);

/// Switching wire: single-pole exponential from v0 toward vf, or an
/// underdamped series-RLC step response when l_wire > 0 and zeta < 1.
JSI_NOINLINE void fill_switching(const BusModel& m, std::size_t i, double v0,
                                 double vf, double tau, double* out);

/// Superpose one neighbor's crosstalk glitch onto a quiet wire.
/// First-order victim node driven through Cc by an exponential aggressor:
///   v(t) = dir * rail * (Cc/Ctot) * tau_v/(tau_v - tau_a)
///              * (exp(-t/tau_v) - exp(-t/tau_a))
/// with the t*exp(-t/tau) limit when the time constants coincide.
/// `rail` is the aggressor's full swing (vdd for rc_full_swing, the
/// reduced swing for low_swing).
JSI_NOINLINE void add_glitch(const BusModel& m, double* w, double rail,
                             double cc, double ctot_v, double tau_v,
                             double tau_a, int direction);

}  // namespace jsi::si::detail

#endif  // JSI_SI_SOLVER_PRIMITIVES_HPP
