#include "si/solver_primitives.hpp"

#include <cmath>

namespace jsi::si::detail {

JSI_NOINLINE double switching_tau(const BusModel& m, std::size_t i,
                                  const util::BitVec& prev,
                                  const util::BitVec& next) {
  const int di = delta_of(prev, next, i);
  const double* couple = m.coupling_data();
  double c = m.params().c_ground;
  auto factor = [&](std::size_t j) {
    const int dj = delta_of(prev, next, j);
    if (dj == 0) return 1.0;   // quiet neighbor: plain load
    if (dj == di) return 0.0;  // same-phase: coupling cap sees no swing
    return 2.0;                // opposite-phase: Miller-doubled
  };
  if (i > 0) c += couple[i - 1] * factor(i - 1);
  if (i + 1 < m.n()) c += couple[i] * factor(i + 1);
  return m.resistance_data()[i] * c;
}

JSI_NOINLINE void fill_switching(const BusModel& m, std::size_t i, double v0,
                                 double vf, double tau, double* out) {
  const BusParams& p = m.params();
  const std::size_t samples = p.samples;
  const double dt = static_cast<double>(p.sample_dt) * kSecPerTick;
  if (p.l_wire > 0.0) {
    // Series RLC step response; underdamped when R < 2*sqrt(L/C).
    const double r = m.resistance_data()[i];
    const double c = m.total_cap_data()[i];
    const double w0 = 1.0 / std::sqrt(p.l_wire * c);
    const double zeta = r / 2.0 * std::sqrt(c / p.l_wire);
    if (zeta < 1.0) {
      const double wd = w0 * std::sqrt(1.0 - zeta * zeta);
      const double k = zeta / std::sqrt(1.0 - zeta * zeta);
      for (std::size_t s = 0; s < samples; ++s) {
        const double t = dt * static_cast<double>(s);
        const double e = std::exp(-zeta * w0 * t);
        out[s] =
            vf + (v0 - vf) * e * (std::cos(wd * t) + k * std::sin(wd * t));
      }
      return;
    }
    // Overdamped RLC degenerates to (slightly slower) RC below.
  }
  for (std::size_t s = 0; s < samples; ++s) {
    const double t = dt * static_cast<double>(s);
    out[s] = vf + (v0 - vf) * std::exp(-t / tau);
  }
}

JSI_NOINLINE void add_glitch(const BusModel& m, double* w, double rail,
                             double cc, double ctot_v, double tau_v,
                             double tau_a, int direction) {
  const BusParams& p = m.params();
  const double amp = direction * rail * cc / ctot_v;
  const double dt = static_cast<double>(p.sample_dt) * kSecPerTick;
  const bool equal = std::abs(tau_v - tau_a) < 1e-15;
  const double scale = equal ? 0.0 : tau_v / (tau_v - tau_a);
  for (std::size_t s = 0; s < p.samples; ++s) {
    const double t = dt * static_cast<double>(s);
    double g;
    if (equal) {
      g = (t / tau_v) * std::exp(-t / tau_v);
    } else {
      g = scale * (std::exp(-t / tau_v) - std::exp(-t / tau_a));
    }
    w[s] += amp * g;
  }
}

}  // namespace jsi::si::detail
