#include "si/waveform.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

namespace jsi::si {

double WaveformView::at(sim::Time t) const {
  if (n_ == 0) return 0.0;
  const double idx = static_cast<double>(t) / static_cast<double>(dt_);
  if (idx <= 0.0) return data_[0];
  const auto lo = static_cast<std::size_t>(idx);
  if (lo + 1 >= n_) return data_[n_ - 1];
  const double frac = idx - static_cast<double>(lo);
  return data_[lo] * (1.0 - frac) + data_[lo + 1] * frac;
}

double WaveformView::max_value() const {
  return n_ == 0 ? 0.0 : *std::max_element(data_, data_ + n_);
}

double WaveformView::min_value() const {
  return n_ == 0 ? 0.0 : *std::min_element(data_, data_ + n_);
}

std::optional<sim::Time> WaveformView::first_above(double level,
                                                   sim::Time from) const {
  for (std::size_t i = from / dt_; i < n_; ++i) {
    if (data_[i] >= level) return dt_ * i;
  }
  return std::nullopt;
}

std::optional<sim::Time> WaveformView::first_below(double level,
                                                   sim::Time from) const {
  for (std::size_t i = from / dt_; i < n_; ++i) {
    if (data_[i] <= level) return dt_ * i;
  }
  return std::nullopt;
}

std::optional<sim::Time> WaveformView::last_crossing(double level) const {
  if (n_ < 2) return std::nullopt;
  for (std::size_t i = n_ - 1; i-- > 0;) {
    const bool above_i = data_[i] >= level;
    const bool above_n = data_[i + 1] >= level;
    if (above_i != above_n) return dt_ * (i + 1);
  }
  return std::nullopt;
}

std::string WaveformView::to_csv() const {
  std::ostringstream os;
  for (std::size_t i = 0; i < n_; ++i) {
    os << dt_ * i << ',' << data_[i] << '\n';
  }
  return os.str();
}

Waveform& Waveform::operator+=(const Waveform& other) {
  if (other.dt_ != dt_) throw std::invalid_argument("Waveform dt mismatch");
  for (std::size_t i = 0; i < v_.size(); ++i) {
    const double ov = i < other.v_.size() ? other.v_[i] : other.final_value();
    v_[i] += ov;
  }
  return *this;
}

Waveform& Waveform::offset(double dv) {
  for (auto& s : v_) s += dv;
  return *this;
}

}  // namespace jsi::si
