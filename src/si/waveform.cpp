#include "si/waveform.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

namespace jsi::si {

double Waveform::at(sim::Time t) const {
  if (v_.empty()) return 0.0;
  const double idx = static_cast<double>(t) / static_cast<double>(dt_);
  if (idx <= 0.0) return v_.front();
  const auto lo = static_cast<std::size_t>(idx);
  if (lo + 1 >= v_.size()) return v_.back();
  const double frac = idx - static_cast<double>(lo);
  return v_[lo] * (1.0 - frac) + v_[lo + 1] * frac;
}

double Waveform::max_value() const {
  return v_.empty() ? 0.0 : *std::max_element(v_.begin(), v_.end());
}

double Waveform::min_value() const {
  return v_.empty() ? 0.0 : *std::min_element(v_.begin(), v_.end());
}

std::optional<sim::Time> Waveform::first_above(double level,
                                               sim::Time from) const {
  for (std::size_t i = from / dt_; i < v_.size(); ++i) {
    if (v_[i] >= level) return dt_ * i;
  }
  return std::nullopt;
}

std::optional<sim::Time> Waveform::first_below(double level,
                                               sim::Time from) const {
  for (std::size_t i = from / dt_; i < v_.size(); ++i) {
    if (v_[i] <= level) return dt_ * i;
  }
  return std::nullopt;
}

std::optional<sim::Time> Waveform::last_crossing(double level) const {
  if (v_.size() < 2) return std::nullopt;
  for (std::size_t i = v_.size() - 1; i-- > 0;) {
    const bool above_i = v_[i] >= level;
    const bool above_n = v_[i + 1] >= level;
    if (above_i != above_n) return dt_ * (i + 1);
  }
  return std::nullopt;
}

Waveform& Waveform::operator+=(const Waveform& other) {
  if (other.dt_ != dt_) throw std::invalid_argument("Waveform dt mismatch");
  for (std::size_t i = 0; i < v_.size(); ++i) {
    const double ov = i < other.v_.size() ? other.v_[i] : other.final_value();
    v_[i] += ov;
  }
  return *this;
}

Waveform& Waveform::offset(double dv) {
  for (auto& s : v_) s += dv;
  return *this;
}

std::string Waveform::to_csv() const {
  std::ostringstream os;
  for (std::size_t i = 0; i < v_.size(); ++i) {
    os << dt_ * i << ',' << v_[i] << '\n';
  }
  return os.str();
}

}  // namespace jsi::si
