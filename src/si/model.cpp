#include "si/model.hpp"

#include "si/tables.hpp"

namespace jsi::si {

void InterconnectModel::validate(const BusParams&) const {}

bool InterconnectModel::tables_supported(std::size_t n_wires) const {
  return TransitionTable::supported(n_wires);
}

bool InterconnectModel::same_extra_params(const BusParams&,
                                          const BusParams&) const {
  return true;
}

const InterconnectModel& model_for(ModelKind kind) {
  switch (kind) {
    case ModelKind::LowSwing:
      return detail::low_swing_model();
    case ModelKind::RcFullSwing:
      break;
  }
  return detail::rc_full_swing_model();
}

const char* model_kind_name(ModelKind kind) { return model_for(kind).name(); }

bool model_kind_from_name(std::string_view name, ModelKind& out) {
  for (ModelKind k : kAllModelKinds) {
    if (name == model_for(k).name()) {
      out = k;
      return true;
    }
  }
  return false;
}

bool same_params(const BusParams& a, const BusParams& b) {
  return a.model == b.model && a.n_wires == b.n_wires && a.vdd == b.vdd &&
         a.r_driver == b.r_driver && a.r_wire == b.r_wire &&
         a.c_ground == b.c_ground && a.c_couple == b.c_couple &&
         a.l_wire == b.l_wire && a.sample_dt == b.sample_dt &&
         a.samples == b.samples && model_for(a.model).same_extra_params(a, b);
}

}  // namespace jsi::si
