#ifndef JSI_SI_ARENA_HPP
#define JSI_SI_ARENA_HPP

#include <algorithm>
#include <cstddef>
#include <vector>

namespace jsi::si {

/// Bump arena for waveform sample buffers.
///
/// The transition kernel evaluates n wires x `samples` doubles per bus
/// transition; allocating those as per-wire `std::vector`s (the pre-SoA
/// `Waveform` scratch) put a malloc/free pair on every wire of every
/// transition. The arena replaces that with one pointer bump per wire and
/// a single `reset()` per transition, while *retaining* its chunks across
/// resets so a steady-state campaign performs no allocation at all.
///
/// Layout rules:
///  * `alloc(n)` returns an uninitialized span of `n` doubles that stays
///    valid until the next `reset()` (or destruction). Chunks are never
///    resized once created, so growing the arena does not move previously
///    handed-out spans within the current reset cycle.
///  * `reset()` rewinds all chunks for reuse; it never releases memory.
///  * The arena is a scratch resource, not a container: copying a
///    `WaveArena` yields a *fresh, empty* arena (spans must never be
///    shared across owners — each `CoupledBus` clone gets its own).
class WaveArena {
 public:
  /// Default chunk: 64 waveforms of the default 2048-sample window.
  static constexpr std::size_t kDefaultChunkDoubles = 64 * 2048;

  explicit WaveArena(std::size_t chunk_doubles = kDefaultChunkDoubles)
      : chunk_doubles_(chunk_doubles == 0 ? kDefaultChunkDoubles
                                          : chunk_doubles) {}

  // Copying transfers the configuration only: spans handed out by the
  // source must not alias into the copy (see class comment).
  WaveArena(const WaveArena& other) : chunk_doubles_(other.chunk_doubles_) {}
  WaveArena& operator=(const WaveArena& other) {
    if (this != &other) {
      chunk_doubles_ = other.chunk_doubles_;
      chunks_.clear();
      active_ = 0;
      used_ = 0;
    }
    return *this;
  }
  WaveArena(WaveArena&&) = default;
  WaveArena& operator=(WaveArena&&) = default;

  /// Uninitialized span of `n` doubles, stable until the next reset().
  double* alloc(std::size_t n) {
    while (active_ < chunks_.size()) {
      if (used_ + n <= chunks_[active_].size()) {
        double* p = chunks_[active_].data() + used_;
        used_ += n;
        return p;
      }
      ++active_;
      used_ = 0;
    }
    // No existing chunk fits: grow by one chunk sized for the request.
    chunks_.emplace_back(std::max(chunk_doubles_, n));
    active_ = chunks_.size() - 1;
    used_ = n;
    return chunks_[active_].data();
  }

  /// Rewind for reuse; capacity is retained.
  void reset() {
    active_ = 0;
    used_ = 0;
  }

  /// Doubles currently resident (capacity, not live allocations).
  std::size_t capacity() const {
    std::size_t total = 0;
    for (const auto& c : chunks_) total += c.size();
    return total;
  }

  std::size_t chunk_count() const { return chunks_.size(); }

 private:
  std::size_t chunk_doubles_;
  // Each chunk is allocated once at its final size and never resized, so
  // data() pointers into it are stable for the arena's lifetime.
  std::vector<std::vector<double>> chunks_;
  std::size_t active_ = 0;
  std::size_t used_ = 0;  // doubles consumed in chunks_[active_]
};

}  // namespace jsi::si

#endif  // JSI_SI_ARENA_HPP
