#include "si/bus.hpp"

#include <cstring>
#include <sstream>
#include <stdexcept>

#include "si/model.hpp"

namespace jsi::si {

CoupledBus::CoupledBus(BusParams p) : model_(p) {}

CoupledBus CoupledBus::clone() const {
  CoupledBus c = *this;
  c.sink_ = nullptr;  // sinks are thread-local; never shared with a clone
  // The arena copy is fresh (see WaveArena) and the last batch's pointers
  // reference *our* storage; a clone starts with no live batch.
  c.batch_ptrs_.clear();
  return c;
}

void CoupledBus::scale_coupling(std::size_t pair, double factor) {
  model_.scale_coupling(pair, factor);
}

void CoupledBus::add_series_resistance(std::size_t wire, double ohms) {
  model_.add_series_resistance(wire, ohms);
}

void CoupledBus::inject_crosstalk_defect(std::size_t wire, double severity) {
  model_.inject_crosstalk_defect(wire, severity);
}

void CoupledBus::clear_defects() { model_.clear_defects(); }

void CoupledBus::set_cache_enabled(bool on) {
  cache_on_ = on;
  if (!on) {
    cache_.clear();
    cache_order_.clear();
  }
}

double CoupledBus::cache_hit_rate() const {
  const std::uint64_t lookups = cache_hits_ + cache_misses_;
  return lookups == 0
             ? 0.0
             : static_cast<double>(cache_hits_) / static_cast<double>(lookups);
}

void CoupledBus::clear_cache() {
  cache_.clear();
  cache_order_.clear();
}

void CoupledBus::set_tables_enabled(bool on) {
  tables_on_ = on;
  if (!on) table_.clear();
}

void CoupledBus::precompile_tables() {
  if (!tables_on_ ||
      !model_for(params().model).tables_supported(model_.n())) {
    return;
  }
  if (!table_.fresh(model_)) table_.build(model_, kernel_);
}

double CoupledBus::table_hit_rate() const {
  const std::uint64_t lookups = table_hits_ + table_misses_;
  return lookups == 0
             ? 0.0
             : static_cast<double>(table_hits_) / static_cast<double>(lookups);
}

void CoupledBus::require_vector_widths(const util::BitVec& prev,
                                       const util::BitVec& next) const {
  if (prev.size() != model_.n() || next.size() != model_.n()) {
    throw std::invalid_argument("vector width != bus width");
  }
}

void CoupledBus::emit_cache_event(const char* name, bool hit,
                                  std::int64_t b) const {
  if (!sink_) return;
  obs::Event e;
  e.kind = obs::EventKind::CacheLookup;
  e.name = name;
  e.a = hit ? 1 : 0;
  e.b = b;
  sink_->on_event(e);
}

void CoupledBus::memo_wire_into(std::size_t i, const util::BitVec& prev,
                                const util::BitVec& next, double* dst) const {
  const std::size_t samples = model_.params().samples;
  if (!cache_on_) {
    TransitionKernel::solve_wire(model_, i, prev, next, dst);
    return;
  }
  if (cache_gen_ != model_.defect_generation()) {
    cache_.clear();
    cache_order_.clear();
    cache_gen_ = model_.defect_generation();
  }
  const std::uint64_t key = neighborhood_key(model_.n(), i, prev, next);
  const auto it = cache_.find(key);
  const bool hit = it != cache_.end();
  emit_cache_event("si.cache", hit, static_cast<std::int64_t>(i));
  if (hit) {
    ++cache_hits_;
    // Copy out rather than aliasing the entry: a later wire's miss can
    // FIFO-evict this entry within the same batch.
    std::memcpy(dst, it->second.data(), samples * sizeof(double));
    return;
  }
  ++cache_misses_;
  TransitionKernel::solve_wire(model_, i, prev, next, dst);
  // Bounded FIFO: evict the oldest entry instead of flushing wholesale,
  // so a working set one larger than the cap degrades gracefully rather
  // than thrashing to a 0% hit rate.
  while (cache_.size() >= kMaxCacheEntries && !cache_order_.empty()) {
    cache_.erase(cache_order_.front());
    cache_order_.pop_front();
  }
  cache_.emplace(
      key, Waveform(WaveformView(dst, samples, model_.params().sample_dt)));
  cache_order_.push_back(key);
}

Waveform CoupledBus::wire_response(std::size_t i, const util::BitVec& prev,
                                   const util::BitVec& next) const {
  require_vector_widths(prev, next);
  Waveform w(model_.params().samples, model_.params().sample_dt);
  memo_wire_into(i, prev, next, w.data());
  return w;
}

Waveform CoupledBus::solve_wire_response(std::size_t i,
                                         const util::BitVec& prev,
                                         const util::BitVec& next) const {
  Waveform w(model_.params().samples, model_.params().sample_dt);
  TransitionKernel::solve_wire(model_, i, prev, next, w.data());
  return w;
}

std::vector<Waveform> CoupledBus::transition(const util::BitVec& prev,
                                             const util::BitVec& next) const {
  std::vector<Waveform> out;
  out.reserve(model_.n());
  for (std::size_t i = 0; i < model_.n(); ++i) {
    out.push_back(wire_response(i, prev, next));
  }
  return out;
}

TransitionBatch CoupledBus::transition_batch(const util::BitVec& prev,
                                             const util::BitVec& next) const {
  require_vector_widths(prev, next);
  const std::size_t n = model_.n();
  const std::size_t samples = model_.params().samples;
  TransitionBatch b;
  b.n_wires = n;
  b.samples = samples;
  b.dt = model_.params().sample_dt;
  batch_ptrs_.assign(n, nullptr);

  if (tables_on_ && model_for(params().model).tables_supported(n)) {
    if (!table_.fresh(model_)) table_.build(model_, kernel_);
    const std::size_t e = table_.find(prev, next);
    const bool hit = e != TransitionTable::npos;
    emit_cache_event("si.table", hit, -1);
    if (hit) {
      ++table_hits_;
      for (std::size_t i = 0; i < n; ++i) {
        batch_ptrs_[i] = table_.wire_data(e, i);
      }
      b.ptrs = batch_ptrs_.data();
      return b;
    }
    ++table_misses_;
  }

  // Non-MA transition (or tables unavailable): evaluate through the memo
  // cache into the arena, one span per wire, zero per-transition mallocs
  // in steady state.
  arena_.reset();
  for (std::size_t i = 0; i < n; ++i) {
    double* dst = arena_.alloc(samples);
    memo_wire_into(i, prev, next, dst);
    batch_ptrs_[i] = dst;
  }
  b.ptrs = batch_ptrs_.data();
  return b;
}

util::Logic CoupledBus::settled_logic(WaveformView w) const {
  return util::to_logic(
      w.final_value() >=
      model_for(params().model).settled_threshold(model_.params()));
}

bool matches_width(const CoupledBus* bus, std::size_t expected) {
  return bus != nullptr && bus->n() == expected;
}

void require_width(const CoupledBus& bus, std::size_t expected) {
  if (bus.n() != expected) {
    std::ostringstream os;
    os << model_kind_name(bus.params().model) << " bus width " << bus.n()
       << " != expected " << expected;
    throw std::invalid_argument(os.str());
  }
}

}  // namespace jsi::si
