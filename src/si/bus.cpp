#include "si/bus.hpp"

#include <cmath>
#include <stdexcept>

namespace jsi::si {

namespace {
constexpr double kLn2 = 0.6931471805599453;
/// Seconds per sim::Time tick (1 ps).
constexpr double kSecPerTick = 1e-12;
}  // namespace

CoupledBus::CoupledBus(BusParams p) : p_(p) {
  if (p_.n_wires == 0) throw std::invalid_argument("bus needs >= 1 wire");
  if (p_.samples < 2) throw std::invalid_argument("bus needs >= 2 samples");
  couple_.assign(p_.n_wires > 0 ? p_.n_wires - 1 : 0, p_.c_couple);
  extra_r_.assign(p_.n_wires, 0.0);
}

CoupledBus CoupledBus::clone() const {
  CoupledBus c = *this;
  c.sink_ = nullptr;  // sinks are thread-local; never shared with a clone
  return c;
}

void CoupledBus::scale_coupling(std::size_t pair, double factor) {
  couple_.at(pair) *= factor;
  ++defect_gen_;
}

void CoupledBus::add_series_resistance(std::size_t wire, double ohms) {
  extra_r_.at(wire) += ohms;
  ++defect_gen_;
}

void CoupledBus::inject_crosstalk_defect(std::size_t wire, double severity) {
  if (severity < 1.0) throw std::invalid_argument("severity must be >= 1");
  if (wire > 0) scale_coupling(wire - 1, severity);
  if (wire + 1 < p_.n_wires) scale_coupling(wire, severity);
  // Weak holding driver scales with defect severity; calibrated so that
  // severity ~5 crosses the default ND vulnerable-region threshold.
  add_series_resistance(wire, (severity - 1.0) * 400.0);
}

void CoupledBus::clear_defects() {
  couple_.assign(couple_.size(), p_.c_couple);
  extra_r_.assign(p_.n_wires, 0.0);
  ++defect_gen_;
}

double CoupledBus::coupling(std::size_t pair) const { return couple_.at(pair); }

double CoupledBus::resistance(std::size_t wire) const {
  return p_.r_driver + p_.r_wire + extra_r_.at(wire);
}

double CoupledBus::total_cap(std::size_t wire) const {
  if (wire >= p_.n_wires) throw std::out_of_range("bad wire");
  double c = p_.c_ground;
  if (wire > 0) c += couple_[wire - 1];
  if (wire + 1 < p_.n_wires) c += couple_[wire];
  return c;
}

double CoupledBus::self_tau(std::size_t wire) const {
  return resistance(wire) * total_cap(wire);
}

sim::Time CoupledBus::nominal_delay(std::size_t wire) const {
  if (wire >= p_.n_wires) throw std::out_of_range("bad wire");
  double c = p_.c_ground;
  if (wire > 0) c += p_.c_couple;
  if (wire + 1 < p_.n_wires) c += p_.c_couple;
  const double tau = (p_.r_driver + p_.r_wire) * c;
  return static_cast<sim::Time>(tau * kLn2 / kSecPerTick + 0.5);
}

int CoupledBus::delta(const util::BitVec& prev, const util::BitVec& next,
                      std::size_t i) const {
  const int a = prev[i] ? 1 : 0;
  const int b = next[i] ? 1 : 0;
  return b - a;
}

double CoupledBus::miller_cap(std::size_t i, const util::BitVec& prev,
                              const util::BitVec& next) const {
  const int di = delta(prev, next, i);
  double c = p_.c_ground;
  auto factor = [&](std::size_t j) {
    const int dj = delta(prev, next, j);
    if (dj == 0) return 1.0;       // quiet neighbor: plain load
    if (dj == di) return 0.0;      // same-phase: coupling cap sees no swing
    return 2.0;                    // opposite-phase: Miller-doubled
  };
  if (i > 0) c += couple_[i - 1] * factor(i - 1);
  if (i + 1 < p_.n_wires) c += couple_[i] * factor(i + 1);
  return c;
}

Waveform CoupledBus::switching_response(std::size_t i, double v0, double vf,
                                        double tau) const {
  Waveform w(p_.samples, p_.sample_dt, v0);
  const double dt = static_cast<double>(p_.sample_dt) * kSecPerTick;
  if (p_.l_wire > 0.0) {
    // Series RLC step response; underdamped when R < 2*sqrt(L/C).
    const double r = resistance(i);
    const double c = total_cap(i);
    const double w0 = 1.0 / std::sqrt(p_.l_wire * c);
    const double zeta = r / 2.0 * std::sqrt(c / p_.l_wire);
    if (zeta < 1.0) {
      const double wd = w0 * std::sqrt(1.0 - zeta * zeta);
      const double k = zeta / std::sqrt(1.0 - zeta * zeta);
      for (std::size_t s = 0; s < w.samples(); ++s) {
        const double t = dt * static_cast<double>(s);
        const double e = std::exp(-zeta * w0 * t);
        w[s] = vf + (v0 - vf) * e * (std::cos(wd * t) + k * std::sin(wd * t));
      }
      return w;
    }
    // Overdamped RLC degenerates to (slightly slower) RC below.
  }
  for (std::size_t s = 0; s < w.samples(); ++s) {
    const double t = dt * static_cast<double>(s);
    w[s] = vf + (v0 - vf) * std::exp(-t / tau);
  }
  return w;
}

void CoupledBus::add_glitch(Waveform& w, double cc, double ctot_v,
                            double tau_v, double tau_a, int direction) const {
  // First-order victim node driven through Cc by an exponential aggressor:
  //   v(t) = dir * Vdd * (Cc/Ctot) * tau_v/(tau_v - tau_a)
  //              * (exp(-t/tau_v) - exp(-t/tau_a))
  // with the t*exp(-t/tau) limit when the time constants coincide.
  const double amp = direction * p_.vdd * cc / ctot_v;
  const double dt = static_cast<double>(p_.sample_dt) * kSecPerTick;
  const bool equal = std::abs(tau_v - tau_a) < 1e-15;
  const double scale = equal ? 0.0 : tau_v / (tau_v - tau_a);
  for (std::size_t s = 0; s < w.samples(); ++s) {
    const double t = dt * static_cast<double>(s);
    double g;
    if (equal) {
      g = (t / tau_v) * std::exp(-t / tau_v);
    } else {
      g = scale * (std::exp(-t / tau_v) - std::exp(-t / tau_a));
    }
    w[s] += amp * g;
  }
}

void CoupledBus::set_cache_enabled(bool on) {
  cache_on_ = on;
  if (!on) {
    cache_.clear();
    cache_order_.clear();
  }
}

double CoupledBus::cache_hit_rate() const {
  const std::uint64_t lookups = cache_hits_ + cache_misses_;
  return lookups == 0
             ? 0.0
             : static_cast<double>(cache_hits_) / static_cast<double>(lookups);
}

void CoupledBus::clear_cache() {
  cache_.clear();
  cache_order_.clear();
}

std::uint64_t CoupledBus::cache_key(std::size_t i, const util::BitVec& prev,
                                    const util::BitVec& next) const {
  // 5-bit local windows [i-2, i+2]; positions beyond the bus encode as 0.
  std::uint64_t pbits = 0;
  std::uint64_t nbits = 0;
  for (int off = -2; off <= 2; ++off) {
    const long long j = static_cast<long long>(i) + off;
    pbits <<= 1;
    nbits <<= 1;
    if (j >= 0 && j < static_cast<long long>(p_.n_wires)) {
      pbits |= prev[static_cast<std::size_t>(j)] ? 1u : 0u;
      nbits |= next[static_cast<std::size_t>(j)] ? 1u : 0u;
    }
  }
  return (static_cast<std::uint64_t>(i) << 10) | (pbits << 5) | nbits;
}

Waveform CoupledBus::wire_response(std::size_t i, const util::BitVec& prev,
                                   const util::BitVec& next) const {
  if (prev.size() != p_.n_wires || next.size() != p_.n_wires) {
    throw std::invalid_argument("vector width != bus width");
  }
  if (!cache_on_) return solve_wire_response(i, prev, next);

  if (cache_gen_ != defect_gen_) {
    cache_.clear();
    cache_order_.clear();
    cache_gen_ = defect_gen_;
  }
  const std::uint64_t key = cache_key(i, prev, next);
  const auto it = cache_.find(key);
  const bool hit = it != cache_.end();
  if (sink_) {
    obs::Event e;
    e.kind = obs::EventKind::CacheLookup;
    e.name = "si.cache";
    e.a = hit ? 1 : 0;
    e.b = static_cast<std::int64_t>(i);
    sink_->on_event(e);
  }
  if (hit) {
    ++cache_hits_;
    return it->second;
  }
  ++cache_misses_;
  Waveform w = solve_wire_response(i, prev, next);
  // Bounded FIFO: evict the oldest entry instead of flushing wholesale,
  // so a working set one larger than the cap degrades gracefully rather
  // than thrashing to a 0% hit rate.
  while (cache_.size() >= kMaxCacheEntries && !cache_order_.empty()) {
    cache_.erase(cache_order_.front());
    cache_order_.pop_front();
  }
  cache_.emplace(key, w);
  cache_order_.push_back(key);
  return w;
}

Waveform CoupledBus::solve_wire_response(std::size_t i,
                                         const util::BitVec& prev,
                                         const util::BitVec& next) const {
  const int di = delta(prev, next, i);
  if (di != 0) {
    const double tau = resistance(i) * miller_cap(i, prev, next);
    const double v0 = prev[i] ? p_.vdd : 0.0;
    const double vf = next[i] ? p_.vdd : 0.0;
    return switching_response(i, v0, vf, tau);
  }
  // Quiet wire: rail baseline plus superposed neighbor glitches.
  const double rail = prev[i] ? p_.vdd : 0.0;
  Waveform w(p_.samples, p_.sample_dt, rail);
  const double ctot_v = total_cap(i);
  const double tau_v = resistance(i) * ctot_v;
  auto inject = [&](std::size_t j, double cc) {
    const int dj = delta(prev, next, j);
    if (dj == 0) return;
    const double tau_a = resistance(j) * miller_cap(j, prev, next);
    add_glitch(w, cc, ctot_v, tau_v, tau_a, dj);
  };
  if (i > 0) inject(i - 1, couple_[i - 1]);
  if (i + 1 < p_.n_wires) inject(i + 1, couple_[i]);
  return w;
}

std::vector<Waveform> CoupledBus::transition(const util::BitVec& prev,
                                             const util::BitVec& next) const {
  std::vector<Waveform> out;
  out.reserve(p_.n_wires);
  for (std::size_t i = 0; i < p_.n_wires; ++i) {
    out.push_back(wire_response(i, prev, next));
  }
  return out;
}

util::Logic CoupledBus::settled_logic(const Waveform& w) const {
  return util::to_logic(w.final_value() >= p_.vdd / 2.0);
}

bool matches_width(const CoupledBus* bus, std::size_t expected) {
  return bus != nullptr && bus->n() == expected;
}

void require_width(const CoupledBus& bus, std::size_t expected,
                   const char* message) {
  if (bus.n() != expected) throw std::invalid_argument(message);
}

}  // namespace jsi::si
