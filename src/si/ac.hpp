#ifndef JSI_SI_AC_HPP
#define JSI_SI_AC_HPP

#include "si/detectors.hpp"
#include "si/waveform.hpp"

namespace jsi::si {

/// AC-coupling model for the IEEE 1149.6 comparison (paper §1.1).
///
/// 1149.6 targets AC-coupled interconnects: a series DC-blocking capacitor
/// with a terminated receiver forms a first-order high-pass, so the test
/// receiver sees only the *derivative-shaped* edges of the signal riding
/// on the termination bias. The paper argues this is exactly why a 49.6
/// receiver cannot observe the class of integrity losses the ND cell
/// catches — slowly developing level errors and low-speed noise survive
/// the channel as (almost) nothing.
struct AcCouplingParams {
  double tau = 200e-12;  ///< R_term * C_block high-pass time constant [s]
  double bias = 0.9;     ///< receiver termination bias [V]
};

/// Pass `w` through the AC-coupled channel: first-order high-pass plus
/// the termination bias.
Waveform ac_couple(const Waveform& w, const AcCouplingParams& p);

/// A 1149.6-style test receiver: hysteresis comparator around the bias.
/// It fires on excursions beyond `edge_threshold` volts from the bias —
/// i.e. on sufficiently fast edges — and is blind to anything the
/// DC-block removed.
class AcTestReceiver {
 public:
  explicit AcTestReceiver(AcCouplingParams channel, double edge_threshold)
      : channel_(channel), threshold_(edge_threshold) {}

  /// True iff the receiver sees any activity for this (pre-channel)
  /// waveform: the post-channel signal leaves the bias band.
  bool sees_activity(const Waveform& w) const;

  /// Sticky-flag semantics analogous to NdCell, but operating on the
  /// post-channel waveform only.
  void observe(const Waveform& w) {
    if (sees_activity(w)) flag_ = true;
  }
  bool flag() const { return flag_; }
  void clear() { flag_ = false; }

 private:
  AcCouplingParams channel_;
  double threshold_;
  bool flag_ = false;
};

}  // namespace jsi::si

#endif  // JSI_SI_AC_HPP
