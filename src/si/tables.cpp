#include "si/tables.hpp"

#include <cstring>

#include "mafm/fault.hpp"

namespace jsi::si {

void TransitionTable::build(const BusModel& m, TransitionKernel& kernel) {
  clear();
  const std::size_t n = m.n();
  const std::size_t samples = m.params().samples;
  n_wires_ = n;
  samples_ = samples;

  // Neighborhood-key -> pool-offset dedup map, local to one build.
  std::unordered_map<std::uint64_t, std::uint32_t> dedup;
  // Scratch block for one full batched evaluation (n*samples doubles).
  std::vector<double> scratch(n * samples);

  for (const mafm::MaFault f : mafm::kAllFaults) {
    for (std::size_t victim = 0; victim < n; ++victim) {
      const mafm::VectorPair vp = mafm::vectors_for(f, n, victim);
      const PairKey key{vp.v1.to_u64(), vp.v2.to_u64()};
      // Distinct (fault, victim) points can excite the same vector pair
      // (e.g. Rs on wire 0 and Fs on wire 1 of a 2-wire bus); first
      // build wins, later duplicates are skipped.
      if (index_.count(key) != 0) continue;

      const std::uint32_t entry = static_cast<std::uint32_t>(n_entries_++);
      kernel.evaluate(m, vp.v1, vp.v2, scratch.data());
      for (std::size_t i = 0; i < n; ++i) {
        const std::uint64_t nkey = neighborhood_key(n, i, vp.v1, vp.v2);
        const auto it = dedup.find(nkey);
        std::uint32_t off;
        if (it != dedup.end()) {
          off = it->second;
        } else {
          off = static_cast<std::uint32_t>(pool_.size());
          pool_.insert(pool_.end(), scratch.data() + i * samples,
                       scratch.data() + (i + 1) * samples);
          dedup.emplace(nkey, off);
        }
        offsets_.push_back(off);
        (void)entry;
      }
      index_.emplace(key, entry);
    }
  }

  built_gen_ = m.defect_generation();
  built_ = true;
}

std::size_t TransitionTable::find(const util::BitVec& prev,
                                  const util::BitVec& next) const {
  if (!built_) return npos;
  const PairKey key{prev.to_u64(), next.to_u64()};
  const auto it = index_.find(key);
  return it == index_.end() ? npos : static_cast<std::size_t>(it->second);
}

void TransitionTable::clear() {
  index_.clear();
  offsets_.clear();
  pool_.clear();
  n_wires_ = 0;
  samples_ = 0;
  n_entries_ = 0;
  built_gen_ = 0;
  built_ = false;
}

}  // namespace jsi::si
