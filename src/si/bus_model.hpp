#ifndef JSI_SI_BUS_MODEL_HPP
#define JSI_SI_BUS_MODEL_HPP

#include <cstddef>
#include <cstdint>
#include <vector>

#include "sim/time.hpp"

namespace jsi::si {

/// Interconnect model kinds selectable per bus. Each kind is implemented
/// behind the `InterconnectModel` interface (si/model.hpp) and registered
/// in `model_for()`; the scenario IR selects one via `bus.model`.
enum class ModelKind {
  RcFullSwing,  ///< full-swing CMOS driver, coupled-RC(+L) wire (default)
  LowSwing,     ///< repeaterless low-swing driver + level-converting receiver
};

/// Electrical parameters of an n-wire parallel interconnect bus.
///
/// Defaults model a long 180 nm-era global interconnect: ~350 Ω total drive
/// resistance and ~300 fF per-wire load gives a ~105 ps self time constant,
/// i.e. a ~73 ps nominal 50% delay.
struct BusParams {
  std::size_t n_wires = 8;
  double vdd = 1.8;            ///< supply [V]
  double r_driver = 250.0;     ///< driver output resistance [Ohm]
  double r_wire = 100.0;       ///< distributed wire resistance (lumped) [Ohm]
  double c_ground = 200e-15;   ///< wire-to-ground capacitance [F]
  double c_couple = 50e-15;    ///< adjacent-pair coupling capacitance [F]
  double l_wire = 0.0;         ///< wire inductance [H]; >0 enables ringing
  sim::Time sample_dt = sim::kPs;  ///< waveform sample step
  std::size_t samples = 2048;      ///< waveform window (2048 ps default)

  ModelKind model = ModelKind::RcFullSwing;  ///< interconnect model kind

  // Model-specific parameters (validated and read only by the selected
  // model; ignored by rc_full_swing):
  double swing_frac = 0.25;       ///< low_swing: bus swing as fraction of vdd
  double receiver_vt_frac = 0.2;  ///< low_swing: converter Vt as frac of vdd
};

/// Electrical state of a coupled bus: parameters plus injected defects,
/// laid out as struct-of-arrays for the transition kernel.
///
/// `BusModel` is the passive half of the former monolithic `CoupledBus`:
/// it answers "what are the time constants of wire i right now" but never
/// evaluates a waveform — that is `TransitionKernel`'s job, reading the
/// contiguous per-wire arrays below in one flat pass. The model is
/// immutable between defect mutations; every mutation bumps
/// `defect_generation()` and rebuilds the derived arrays, which is what
/// lets the transition tables and memo cache key their validity off a
/// single integer compare.
///
/// SoA arrays (all indexed by wire, except `coupling_data` by pair):
///  * `coupling_data()[p]`   — effective coupling cap of pair (p, p+1) [F]
///  * `resistance_data()[i]` — total series resistance incl. defects [Ohm]
///  * `total_cap_data()[i]`  — ground + both couplings [F]
///  * `rail_data()[i]`       — per-wire high rail [V] (the model's
///                             `high_rail`; SoA so the kernel's v0/vf
///                             loads are contiguous)
class BusModel {
 public:
  explicit BusModel(BusParams p);

  const BusParams& params() const { return p_; }
  std::size_t n() const { return p_.n_wires; }

  // ---- defect / process-variation injection -------------------------------

  /// Multiply the coupling capacitance of adjacent pair `pair` = (pair,
  /// pair+1) by `factor`. Cumulative.
  void scale_coupling(std::size_t pair, double factor);

  /// Add series resistance to `wire` (resistive open, weak driver).
  void add_series_resistance(std::size_t wire, double ohms);

  /// Composite crosstalk defect around `wire`: scales both adjacent
  /// couplings by `severity` and weakens the wire's driver proportionally.
  /// `severity` 1.0 is a no-op; ~5+ produces detectable glitches with the
  /// default detector thresholds.
  void inject_crosstalk_defect(std::size_t wire, double severity);

  /// Remove all injected defects.
  void clear_defects();

  /// Monotone counter of defect-state mutations; derived caches (memo
  /// entries, precompiled transition tables) are only ever valid within
  /// one generation.
  std::uint64_t defect_generation() const { return defect_gen_; }

  // ---- electrical queries (bounds-checked scalar forms) -------------------

  /// Effective coupling capacitance of adjacent pair `pair` [F].
  double coupling(std::size_t pair) const;

  /// Total series resistance of `wire` including defects [Ohm].
  double resistance(std::size_t wire) const;

  /// Total capacitance seen by `wire` (ground + both couplings) [F].
  double total_cap(std::size_t wire) const;

  /// Self time constant R*C of `wire` with current defects [s].
  double self_tau(std::size_t wire) const;

  /// Defect-free 50% delay of `wire` — the designer's timing expectation
  /// from which the SD cell's skew-immune window is budgeted.
  sim::Time nominal_delay(std::size_t wire) const;

  // ---- SoA access for the kernel (unchecked, contiguous) ------------------

  const double* coupling_data() const { return couple_.data(); }
  const double* resistance_data() const { return resistance_.data(); }
  const double* total_cap_data() const { return total_cap_.data(); }
  const double* rail_data() const { return rail_.data(); }

 private:
  /// Recompute resistance_/total_cap_ from couple_/extra_r_. Expression
  /// order matches the historical per-call computations exactly so the
  /// refactor is bit-for-bit transparent.
  void rebuild_derived();

  BusParams p_;
  std::vector<double> couple_;      // per adjacent pair, with defects
  std::vector<double> extra_r_;     // per wire, defect series resistance
  std::vector<double> resistance_;  // derived: r_driver + r_wire + extra_r
  std::vector<double> total_cap_;   // derived: c_ground + adjacent couplings
  std::vector<double> rail_;        // per wire high rail (model-dependent)
  std::uint64_t defect_gen_ = 0;
};

}  // namespace jsi::si

#endif  // JSI_SI_BUS_MODEL_HPP
