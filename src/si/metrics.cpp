#include "si/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace jsi::si {

WaveMetrics measure(WaveformView w, double vdd) {
  WaveMetrics m;
  if (w.samples() == 0) return m;
  m.v_start = w[0];
  m.v_final = w.final_value();
  m.v_min = w.min_value();
  m.v_max = w.max_value();

  const double vth = vdd / 2.0;
  const bool start_high = m.v_start >= vth;
  const bool final_high = m.v_final >= vth;

  if (start_high == final_high) {
    // Quiet wire: report the worst excursion from its rail.
    const double rail = final_high ? vdd : 0.0;
    m.glitch_peak = std::max(m.v_max - rail, rail - m.v_min);
    m.glitch_peak = std::max(m.glitch_peak, 0.0);
    return m;
  }

  // Transition: 10/50/90 thresholds relative to the swing direction.
  const double lo = 0.1 * vdd;
  const double hi = 0.9 * vdd;
  std::optional<sim::Time> t_lo, t_hi;
  if (final_high) {
    t_lo = w.first_above(lo);
    t_hi = w.first_above(hi);
    m.delay_50 = w.first_above(vth);
  } else {
    t_lo = w.first_below(hi);
    t_hi = w.first_below(lo);
    m.delay_50 = w.first_below(vth);
  }
  if (t_lo && t_hi && *t_hi >= *t_lo) {
    m.transition_time = *t_hi - *t_lo;
  } else {
    m.transition_time = sim::Time{0};
  }
  m.settle_time = w.last_crossing(vth);

  // Overshoot beyond the destination rail, relative to the full swing.
  const double swing = vdd;
  const double beyond =
      final_high ? m.v_max - vdd : 0.0 - m.v_min;
  m.overshoot_frac = std::max(0.0, beyond / swing);
  return m;
}

std::string format_metrics(const WaveMetrics& m) {
  std::ostringstream os;
  os.precision(3);
  if (m.is_transition()) {
    os << "transition " << m.v_start << "V -> " << m.v_final << "V";
    if (m.transition_time) os << ", 10-90% " << *m.transition_time << " ps";
    if (m.delay_50) os << ", 50% delay " << *m.delay_50 << " ps";
    if (m.settle_time) os << ", settles " << *m.settle_time << " ps";
    if (m.overshoot_frac > 0.0) {
      os << ", overshoot " << m.overshoot_frac * 100.0 << "%";
    }
  } else {
    os << "quiet at " << m.v_final << "V, worst glitch " << m.glitch_peak
       << "V";
  }
  return os.str();
}

}  // namespace jsi::si
