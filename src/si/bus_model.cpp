#include "si/bus_model.hpp"

#include <stdexcept>

#include "si/model.hpp"

namespace jsi::si {

BusModel::BusModel(BusParams p) : p_(p) {
  if (p_.n_wires == 0) throw std::invalid_argument("bus needs >= 1 wire");
  if (p_.samples < 2) throw std::invalid_argument("bus needs >= 2 samples");
  const InterconnectModel& im = model_for(p_.model);
  im.validate(p_);
  couple_.assign(p_.n_wires > 0 ? p_.n_wires - 1 : 0, p_.c_couple);
  extra_r_.assign(p_.n_wires, 0.0);
  rail_.assign(p_.n_wires, im.high_rail(p_));
  rebuild_derived();
}

void BusModel::rebuild_derived() {
  resistance_.resize(p_.n_wires);
  total_cap_.resize(p_.n_wires);
  for (std::size_t i = 0; i < p_.n_wires; ++i) {
    resistance_[i] = p_.r_driver + p_.r_wire + extra_r_[i];
    double c = p_.c_ground;
    if (i > 0) c += couple_[i - 1];
    if (i + 1 < p_.n_wires) c += couple_[i];
    total_cap_[i] = c;
  }
}

void BusModel::scale_coupling(std::size_t pair, double factor) {
  couple_.at(pair) *= factor;
  ++defect_gen_;
  rebuild_derived();
}

void BusModel::add_series_resistance(std::size_t wire, double ohms) {
  extra_r_.at(wire) += ohms;
  ++defect_gen_;
  rebuild_derived();
}

void BusModel::inject_crosstalk_defect(std::size_t wire, double severity) {
  if (severity < 1.0) throw std::invalid_argument("severity must be >= 1");
  if (wire > 0) scale_coupling(wire - 1, severity);
  if (wire + 1 < p_.n_wires) scale_coupling(wire, severity);
  // Weak holding driver scales with defect severity; calibrated so that
  // severity ~5 crosses the default ND vulnerable-region threshold.
  add_series_resistance(wire, (severity - 1.0) * 400.0);
}

void BusModel::clear_defects() {
  couple_.assign(couple_.size(), p_.c_couple);
  extra_r_.assign(p_.n_wires, 0.0);
  ++defect_gen_;
  rebuild_derived();
}

double BusModel::coupling(std::size_t pair) const { return couple_.at(pair); }

double BusModel::resistance(std::size_t wire) const {
  if (wire >= p_.n_wires) throw std::out_of_range("bad wire");
  return resistance_[wire];
}

double BusModel::total_cap(std::size_t wire) const {
  if (wire >= p_.n_wires) throw std::out_of_range("bad wire");
  return total_cap_[wire];
}

double BusModel::self_tau(std::size_t wire) const {
  return resistance(wire) * total_cap(wire);
}

sim::Time BusModel::nominal_delay(std::size_t wire) const {
  if (wire >= p_.n_wires) throw std::out_of_range("bad wire");
  double c = p_.c_ground;
  if (wire > 0) c += p_.c_couple;
  if (wire + 1 < p_.n_wires) c += p_.c_couple;
  const double tau = (p_.r_driver + p_.r_wire) * c;
  return model_for(p_.model).nominal_delay(p_, tau);
}

}  // namespace jsi::si
