#include "si/kernel.hpp"

#include "si/model.hpp"

namespace jsi::si {

void TransitionKernel::evaluate(const BusModel& m, const util::BitVec& prev,
                                const util::BitVec& next, double* out) {
  model_for(m.params().model).evaluate(m, prev, next, scratch_, out);
}

void TransitionKernel::solve_wire(const BusModel& m, std::size_t i,
                                  const util::BitVec& prev,
                                  const util::BitVec& next, double* out) {
  model_for(m.params().model).solve_wire(m, i, prev, next, out);
}

std::uint64_t neighborhood_key(std::size_t n_wires, std::size_t i,
                               const util::BitVec& prev,
                               const util::BitVec& next) {
  // 5-bit local windows [i-2, i+2]; positions beyond the bus encode as 0.
  std::uint64_t pbits = 0;
  std::uint64_t nbits = 0;
  for (int off = -2; off <= 2; ++off) {
    const long long j = static_cast<long long>(i) + off;
    pbits <<= 1;
    nbits <<= 1;
    if (j >= 0 && j < static_cast<long long>(n_wires)) {
      pbits |= prev[static_cast<std::size_t>(j)] ? 1u : 0u;
      nbits |= next[static_cast<std::size_t>(j)] ? 1u : 0u;
    }
  }
  return (static_cast<std::uint64_t>(i) << 10) | (pbits << 5) | nbits;
}

}  // namespace jsi::si
