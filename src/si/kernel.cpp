#include "si/kernel.hpp"

#include <algorithm>
#include <cmath>

// The batched and scalar paths must agree bit-for-bit, including under
// -march=native where the compiler may contract a*b+c into FMA
// differently per inline context. Keeping the shared solver primitives
// out-of-line guarantees both paths execute the same machine code.
#if defined(__GNUC__) || defined(__clang__)
#define JSI_NOINLINE __attribute__((noinline))
#else
#define JSI_NOINLINE
#endif

namespace jsi::si {

namespace {

/// Seconds per sim::Time tick (1 ps).
constexpr double kSecPerTick = 1e-12;

int delta_of(const util::BitVec& prev, const util::BitVec& next,
             std::size_t i) {
  const int a = prev[i] ? 1 : 0;
  const int b = next[i] ? 1 : 0;
  return b - a;
}

/// Switching time constant of wire i: R_i times the Miller-weighted
/// coupling capacitance (factor 0 toward a same-phase neighbor, 1 toward
/// a quiet one, 2 toward an opposite-phase one).
JSI_NOINLINE double switching_tau(const BusModel& m, std::size_t i,
                                  const util::BitVec& prev,
                                  const util::BitVec& next) {
  const int di = delta_of(prev, next, i);
  const double* couple = m.coupling_data();
  double c = m.params().c_ground;
  auto factor = [&](std::size_t j) {
    const int dj = delta_of(prev, next, j);
    if (dj == 0) return 1.0;   // quiet neighbor: plain load
    if (dj == di) return 0.0;  // same-phase: coupling cap sees no swing
    return 2.0;                // opposite-phase: Miller-doubled
  };
  if (i > 0) c += couple[i - 1] * factor(i - 1);
  if (i + 1 < m.n()) c += couple[i] * factor(i + 1);
  return m.resistance_data()[i] * c;
}

/// Switching wire: single-pole exponential toward the new rail, or an
/// underdamped series-RLC step response when l_wire > 0 and zeta < 1.
JSI_NOINLINE void fill_switching(const BusModel& m, std::size_t i, double v0,
                                 double vf, double tau, double* out) {
  const BusParams& p = m.params();
  const std::size_t samples = p.samples;
  const double dt = static_cast<double>(p.sample_dt) * kSecPerTick;
  if (p.l_wire > 0.0) {
    // Series RLC step response; underdamped when R < 2*sqrt(L/C).
    const double r = m.resistance_data()[i];
    const double c = m.total_cap_data()[i];
    const double w0 = 1.0 / std::sqrt(p.l_wire * c);
    const double zeta = r / 2.0 * std::sqrt(c / p.l_wire);
    if (zeta < 1.0) {
      const double wd = w0 * std::sqrt(1.0 - zeta * zeta);
      const double k = zeta / std::sqrt(1.0 - zeta * zeta);
      for (std::size_t s = 0; s < samples; ++s) {
        const double t = dt * static_cast<double>(s);
        const double e = std::exp(-zeta * w0 * t);
        out[s] =
            vf + (v0 - vf) * e * (std::cos(wd * t) + k * std::sin(wd * t));
      }
      return;
    }
    // Overdamped RLC degenerates to (slightly slower) RC below.
  }
  for (std::size_t s = 0; s < samples; ++s) {
    const double t = dt * static_cast<double>(s);
    out[s] = vf + (v0 - vf) * std::exp(-t / tau);
  }
}

/// Superpose one neighbor's crosstalk glitch onto a quiet wire.
/// First-order victim node driven through Cc by an exponential aggressor:
///   v(t) = dir * Vdd * (Cc/Ctot) * tau_v/(tau_v - tau_a)
///              * (exp(-t/tau_v) - exp(-t/tau_a))
/// with the t*exp(-t/tau) limit when the time constants coincide.
JSI_NOINLINE void add_glitch(const BusModel& m, double* w, double cc,
                             double ctot_v, double tau_v, double tau_a,
                             int direction) {
  const BusParams& p = m.params();
  const double amp = direction * p.vdd * cc / ctot_v;
  const double dt = static_cast<double>(p.sample_dt) * kSecPerTick;
  const bool equal = std::abs(tau_v - tau_a) < 1e-15;
  const double scale = equal ? 0.0 : tau_v / (tau_v - tau_a);
  for (std::size_t s = 0; s < p.samples; ++s) {
    const double t = dt * static_cast<double>(s);
    double g;
    if (equal) {
      g = (t / tau_v) * std::exp(-t / tau_v);
    } else {
      g = scale * (std::exp(-t / tau_v) - std::exp(-t / tau_a));
    }
    w[s] += amp * g;
  }
}

}  // namespace

void TransitionKernel::evaluate(const BusModel& m, const util::BitVec& prev,
                                const util::BitVec& next, double* out) {
  const BusParams& p = m.params();
  const std::size_t n = p.n_wires;
  const std::size_t samples = p.samples;
  delta_.resize(n);
  tau_.resize(n);

  // Pass 1 (SoA): classify every wire and compute the switching time
  // constants once. A quiet wire's glitch needs its aggressor's tau; the
  // scalar path recomputes it per neighbor, the batched path reads it
  // back from this array — same primitive, same bits.
  for (std::size_t i = 0; i < n; ++i) delta_[i] = delta_of(prev, next, i);
  for (std::size_t i = 0; i < n; ++i) {
    if (delta_[i] != 0) tau_[i] = switching_tau(m, i, prev, next);
  }

  // Pass 2: flat fill of the contiguous n*samples block.
  const double* couple = m.coupling_data();
  for (std::size_t i = 0; i < n; ++i) {
    double* w = out + i * samples;
    if (delta_[i] != 0) {
      const double v0 = prev[i] ? p.vdd : 0.0;
      const double vf = next[i] ? p.vdd : 0.0;
      fill_switching(m, i, v0, vf, tau_[i], w);
      continue;
    }
    // Quiet wire: rail baseline plus superposed neighbor glitches
    // (left neighbor injected first, matching the scalar path).
    const double rail = prev[i] ? p.vdd : 0.0;
    std::fill_n(w, samples, rail);
    const double ctot_v = m.total_cap_data()[i];
    const double tau_v = m.resistance_data()[i] * ctot_v;
    if (i > 0 && delta_[i - 1] != 0) {
      add_glitch(m, w, couple[i - 1], ctot_v, tau_v, tau_[i - 1],
                 delta_[i - 1]);
    }
    if (i + 1 < n && delta_[i + 1] != 0) {
      add_glitch(m, w, couple[i], ctot_v, tau_v, tau_[i + 1], delta_[i + 1]);
    }
  }
}

void TransitionKernel::solve_wire(const BusModel& m, std::size_t i,
                                  const util::BitVec& prev,
                                  const util::BitVec& next, double* out) {
  const BusParams& p = m.params();
  const int di = delta_of(prev, next, i);
  if (di != 0) {
    const double tau = switching_tau(m, i, prev, next);
    const double v0 = prev[i] ? p.vdd : 0.0;
    const double vf = next[i] ? p.vdd : 0.0;
    fill_switching(m, i, v0, vf, tau, out);
    return;
  }
  // Quiet wire: rail baseline plus superposed neighbor glitches.
  const double rail = prev[i] ? p.vdd : 0.0;
  std::fill_n(out, p.samples, rail);
  const double ctot_v = m.total_cap_data()[i];
  const double tau_v = m.resistance_data()[i] * ctot_v;
  auto inject = [&](std::size_t j, double cc) {
    const int dj = delta_of(prev, next, j);
    if (dj == 0) return;
    const double tau_a = switching_tau(m, j, prev, next);
    add_glitch(m, out, cc, ctot_v, tau_v, tau_a, dj);
  };
  const double* couple = m.coupling_data();
  if (i > 0) inject(i - 1, couple[i - 1]);
  if (i + 1 < p.n_wires) inject(i + 1, couple[i]);
}

std::uint64_t neighborhood_key(std::size_t n_wires, std::size_t i,
                               const util::BitVec& prev,
                               const util::BitVec& next) {
  // 5-bit local windows [i-2, i+2]; positions beyond the bus encode as 0.
  std::uint64_t pbits = 0;
  std::uint64_t nbits = 0;
  for (int off = -2; off <= 2; ++off) {
    const long long j = static_cast<long long>(i) + off;
    pbits <<= 1;
    nbits <<= 1;
    if (j >= 0 && j < static_cast<long long>(n_wires)) {
      pbits |= prev[static_cast<std::size_t>(j)] ? 1u : 0u;
      nbits |= next[static_cast<std::size_t>(j)] ? 1u : 0u;
    }
  }
  return (static_cast<std::uint64_t>(i) << 10) | (pbits << 5) | nbits;
}

}  // namespace jsi::si
