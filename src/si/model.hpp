#ifndef JSI_SI_MODEL_HPP
#define JSI_SI_MODEL_HPP

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "si/bus_model.hpp"
#include "sim/time.hpp"
#include "util/bitvec.hpp"

namespace jsi::si {

/// Reusable pass-1 scratch for a model's batched `evaluate()`: per-wire
/// transition classification and switching time constants. Owned by the
/// caller (`TransitionKernel`) so the amortized-zero-allocation property
/// of the batched path survives the model indirection.
struct KernelScratch {
  std::vector<int> delta;    // per wire: next - prev in {-1, 0, +1}
  std::vector<double> tau;   // per switching wire: effective R*C [s]
};

/// The pluggable electrical policy of a bus: everything about a
/// `CoupledBus` that depends on *how the wire is driven and received*
/// lives behind this interface, while the model-agnostic machinery —
/// SoA defect state, memo cache, MA transition tables, arena, detectors,
/// sessions — is shared by every model.
///
/// Contract for implementations:
///  * `evaluate()` and `solve_wire()` must agree bit-for-bit. The way to
///    get that is the same discipline the RC model uses: route every
///    floating-point step that both paths execute through the shared
///    `JSI_NOINLINE` primitives in solver_primitives.hpp (or your own
///    noinline helpers), so the compiler emits one copy of the math.
///  * Implementations are immutable singletons (`model_for` returns a
///    shared const instance); all per-bus state lives in `BusModel`.
///  * `validate()` throws std::invalid_argument for bad model-specific
///    params; it runs in the `BusModel` constructor, before any derived
///    state is built.
///
/// To add a model: define the enumerator in `ModelKind`, implement this
/// interface in a new src/si/model_<name>.cpp, register it in
/// `model_for()`/`kAllModelKinds`, and give it a scenario-facing `name()`
/// — parsing, serialization, sweep variation validation, checkpoint
/// fingerprinting, area accounting and the per-model bench guards all
/// key off the registry.
class InterconnectModel {
 public:
  virtual ~InterconnectModel() = default;

  virtual ModelKind kind() const = 0;

  /// Scenario-facing name ("rc_full_swing", "low_swing"); also used in
  /// diagnostics, obs metric tags and BENCH json keys.
  virtual const char* name() const = 0;

  /// Validate model-specific BusParams fields (throws
  /// std::invalid_argument). Default: nothing to validate.
  virtual void validate(const BusParams& p) const;

  /// Per-wire high rail [V] — the voltage a logic-1 wire settles to.
  virtual double high_rail(const BusParams& p) const = 0;

  /// Receiver decision threshold [V] for `settled_logic`.
  virtual double settled_threshold(const BusParams& p) const = 0;

  /// Voltage swing the ND/SD detector cells observe [V]; feeds the
  /// detector supplies so threshold fractions scale with the bus swing.
  virtual double observed_swing(const BusParams& p) const = 0;

  /// Defect-free delay of a wire given its nominal self time constant
  /// `tau` [s] — the designer's timing expectation the SD cell budgets
  /// its skew-immune window from. Includes any fixed receiver delay.
  virtual sim::Time nominal_delay(const BusParams& p, double tau) const = 0;

  /// Batched solver: fill `out[0 .. n*samples)` with all wire waveforms
  /// of prev -> next (wire i at `out + i*samples`).
  virtual void evaluate(const BusModel& m, const util::BitVec& prev,
                        const util::BitVec& next, KernelScratch& scratch,
                        double* out) const = 0;

  /// Scalar reference: fill `out[0 .. samples)` with wire `i`'s waveform,
  /// bit-identical to the corresponding `evaluate()` slice.
  virtual void solve_wire(const BusModel& m, std::size_t i,
                          const util::BitVec& prev, const util::BitVec& next,
                          double* out) const = 0;

  /// May the precompiled MA transition tables serve an n-wire bus of
  /// this model? Default: the generic `TransitionTable` width limit.
  virtual bool tables_supported(std::size_t n_wires) const;

  /// Are the model-specific params of `a` and `b` equal? The nine shared
  /// fields are compared by `same_params`; this hook covers the rest.
  /// Default: no model-specific params, always true.
  virtual bool same_extra_params(const BusParams& a, const BusParams& b) const;

  /// Parameter names the sweep's process-variation stage may vary for
  /// this model (scenario `sweep.variations[].param` values).
  virtual const std::vector<std::string>& variable_params() const = 0;

  /// Area hooks: extra NAND-equivalent gates per wire over the plain
  /// full-swing driver/receiver (level converters, bias networks, ...),
  /// split by which end of the wire they sit on. Zero for rc_full_swing
  /// keeps the paper's Table 7 numbers untouched.
  virtual double extra_sending_gates_per_wire() const { return 0.0; }
  virtual double extra_observing_gates_per_wire() const { return 0.0; }
};

namespace detail {
const InterconnectModel& rc_full_swing_model();
const InterconnectModel& low_swing_model();
}  // namespace detail

/// Every registered model kind, in registry order (perf benches and the
/// kernel ratio guard iterate this).
inline constexpr ModelKind kAllModelKinds[] = {ModelKind::RcFullSwing,
                                               ModelKind::LowSwing};

/// The shared immutable model instance for `kind`.
const InterconnectModel& model_for(ModelKind kind);

/// Scenario-facing name of `kind` ("rc_full_swing", "low_swing").
const char* model_kind_name(ModelKind kind);

/// Parse a scenario-facing model name; returns false on unknown names.
bool model_kind_from_name(std::string_view name, ModelKind& out);

/// Full BusParams equality: the nine shared fields, the model kind, and
/// the model's own extra params. The "may I clone this prototype for
/// this unit?" predicate used by the campaign bus factory and the sweep.
bool same_params(const BusParams& a, const BusParams& b);

}  // namespace jsi::si

#endif  // JSI_SI_MODEL_HPP
