// Repeaterless low-swing interconnect (Naveen & Sharma, arXiv:1511.06726):
// a reduced-swing static driver charges the wire only to
// v_swing = swing_frac * vdd, and a level-converting receiver with a fixed
// input threshold restores full-swing logic.
//
// Electrical mapping onto the shared RC machinery:
//  * Rails: a logic-1 wire settles at v_swing, not vdd; v0/vf and quiet
//    rails scale accordingly, and crosstalk glitches couple from
//    aggressors swinging v_swing.
//  * Rise asymmetry: the reduced-swing pull-up is a source-follower-style
//    stage whose drive weakens as the wire approaches v_swing, modeled as
//    a 1/swing_frac slowdown of the rising time constant; falls keep the
//    plain RC tau (full gate overdrive on the pull-down). The inductive
//    (RLC) branch of fill_switching is left unchanged — it reads R and C
//    directly, and low-swing global wires are modeled resistively here.
//  * Receiver: settled_logic decides at the converter threshold
//    receiver_vt_frac * vdd, and nominal_delay budgets the slower rise to
//    that threshold plus a fixed 30 ps converter delay.
//  * Detectors: ND/SD cells observe the reduced swing, so their supplies
//    (and thus every threshold fraction) scale to observed_swing.
//
// Parity discipline: all floating-point math shared between the batched
// and scalar paths goes through the JSI_NOINLINE primitives (shared with
// rc_full_swing) plus the local noinline rising_tau helper, so both paths
// execute the same machine code and stay bit-identical.

#include <algorithm>
#include <stdexcept>

#include "si/model.hpp"
#include "si/solver_primitives.hpp"

namespace jsi::si {

namespace {

/// Fixed level-converter (receiver) delay [ps].
constexpr sim::Time kReceiverDelayPs = 30;

/// Switching time constant of wire i under the low-swing driver: the
/// Miller-weighted RC tau, slowed by 1/swing_frac on rising transitions
/// (weak reduced-swing pull-up), unchanged on falls.
JSI_NOINLINE double rising_tau(const BusModel& m, std::size_t i,
                               const util::BitVec& prev,
                               const util::BitVec& next) {
  const double tau = detail::switching_tau(m, i, prev, next);
  if (detail::delta_of(prev, next, i) > 0) return tau / m.params().swing_frac;
  return tau;
}

class LowSwingBusModel final : public InterconnectModel {
 public:
  ModelKind kind() const override { return ModelKind::LowSwing; }
  const char* name() const override { return "low_swing"; }

  void validate(const BusParams& p) const override {
    if (!(p.swing_frac > 0.0 && p.swing_frac <= 1.0)) {
      throw std::invalid_argument("low_swing swing_frac must be in (0, 1]");
    }
    if (!(p.receiver_vt_frac > 0.0 && p.receiver_vt_frac < 1.0)) {
      throw std::invalid_argument(
          "low_swing receiver_vt_frac must be in (0, 1)");
    }
    if (!(p.receiver_vt_frac < p.swing_frac)) {
      throw std::invalid_argument(
          "low_swing receiver_vt_frac must be below swing_frac");
    }
  }

  double high_rail(const BusParams& p) const override {
    return p.vdd * p.swing_frac;
  }

  double settled_threshold(const BusParams& p) const override {
    return p.vdd * p.receiver_vt_frac;
  }

  double observed_swing(const BusParams& p) const override {
    return p.vdd * p.swing_frac;
  }

  sim::Time nominal_delay(const BusParams& p, double tau) const override {
    const double tau_rise = tau / p.swing_frac;
    return static_cast<sim::Time>(tau_rise * detail::kLn2 /
                                      detail::kSecPerTick +
                                  0.5) +
           kReceiverDelayPs;
  }

  void evaluate(const BusModel& m, const util::BitVec& prev,
                const util::BitVec& next, KernelScratch& scratch,
                double* out) const override {
    const BusParams& p = m.params();
    const std::size_t n = p.n_wires;
    const std::size_t samples = p.samples;
    const double v_swing = p.vdd * p.swing_frac;
    scratch.delta.resize(n);
    scratch.tau.resize(n);

    for (std::size_t i = 0; i < n; ++i) {
      scratch.delta[i] = detail::delta_of(prev, next, i);
    }
    for (std::size_t i = 0; i < n; ++i) {
      if (scratch.delta[i] != 0) {
        scratch.tau[i] = rising_tau(m, i, prev, next);
      }
    }

    const double* couple = m.coupling_data();
    for (std::size_t i = 0; i < n; ++i) {
      double* w = out + i * samples;
      if (scratch.delta[i] != 0) {
        const double v0 = prev[i] ? v_swing : 0.0;
        const double vf = next[i] ? v_swing : 0.0;
        detail::fill_switching(m, i, v0, vf, scratch.tau[i], w);
        continue;
      }
      // Quiet wire: reduced rail baseline plus superposed neighbor
      // glitches coupling from v_swing aggressors (left first, matching
      // the scalar path).
      const double rail = prev[i] ? v_swing : 0.0;
      std::fill_n(w, samples, rail);
      const double ctot_v = m.total_cap_data()[i];
      const double tau_v = m.resistance_data()[i] * ctot_v;
      if (i > 0 && scratch.delta[i - 1] != 0) {
        detail::add_glitch(m, w, v_swing, couple[i - 1], ctot_v, tau_v,
                           scratch.tau[i - 1], scratch.delta[i - 1]);
      }
      if (i + 1 < n && scratch.delta[i + 1] != 0) {
        detail::add_glitch(m, w, v_swing, couple[i], ctot_v, tau_v,
                           scratch.tau[i + 1], scratch.delta[i + 1]);
      }
    }
  }

  void solve_wire(const BusModel& m, std::size_t i, const util::BitVec& prev,
                  const util::BitVec& next, double* out) const override {
    const BusParams& p = m.params();
    const double v_swing = p.vdd * p.swing_frac;
    const int di = detail::delta_of(prev, next, i);
    if (di != 0) {
      const double tau = rising_tau(m, i, prev, next);
      const double v0 = prev[i] ? v_swing : 0.0;
      const double vf = next[i] ? v_swing : 0.0;
      detail::fill_switching(m, i, v0, vf, tau, out);
      return;
    }
    const double rail = prev[i] ? v_swing : 0.0;
    std::fill_n(out, p.samples, rail);
    const double ctot_v = m.total_cap_data()[i];
    const double tau_v = m.resistance_data()[i] * ctot_v;
    auto inject = [&](std::size_t j, double cc) {
      const int dj = detail::delta_of(prev, next, j);
      if (dj == 0) return;
      const double tau_a = rising_tau(m, j, prev, next);
      detail::add_glitch(m, out, v_swing, cc, ctot_v, tau_v, tau_a, dj);
    };
    const double* couple = m.coupling_data();
    if (i > 0) inject(i - 1, couple[i - 1]);
    if (i + 1 < p.n_wires) inject(i + 1, couple[i]);
  }

  bool same_extra_params(const BusParams& a,
                         const BusParams& b) const override {
    return a.swing_frac == b.swing_frac &&
           a.receiver_vt_frac == b.receiver_vt_frac;
  }

  const std::vector<std::string>& variable_params() const override {
    // receiver_vt_frac is a converter design constant, not a wire-level
    // process knob; swing_frac (bias-network variation) is the
    // model-specific axis the sweep may vary.
    static const std::vector<std::string> kNames = {
        "vdd",     "r_driver", "r_wire",    "c_ground",
        "c_couple", "l_wire",  "swing_frac"};
    return kNames;
  }

  // Reduced-swing static driver: bias/keeper network on the sending end;
  // level-converting receiver (differential pair + restoring inverter) on
  // the observing end. NAND-equivalents per wire, feeding Table 7-style
  // area accounting.
  double extra_sending_gates_per_wire() const override { return 2.0; }
  double extra_observing_gates_per_wire() const override { return 3.0; }
};

}  // namespace

namespace detail {
const InterconnectModel& low_swing_model() {
  static const LowSwingBusModel m;
  return m;
}
}  // namespace detail

}  // namespace jsi::si
