#ifndef JSI_SI_BUS_HPP
#define JSI_SI_BUS_HPP

#include <cstddef>
#include <cstdint>
#include <deque>
#include <unordered_map>
#include <vector>

#include "obs/events.hpp"
#include "si/arena.hpp"
#include "si/bus_model.hpp"
#include "si/kernel.hpp"
#include "si/tables.hpp"
#include "si/waveform.hpp"
#include "sim/time.hpp"
#include "util/bitvec.hpp"
#include "util/logic.hpp"

namespace jsi::si {

/// Analytic coupled-RC(+L) model of the bus between two cores.
///
/// For each bus transition `prev -> next` the model produces the receiving-
/// end voltage waveform of every wire:
///
///  * a **switching** wire follows a single-pole exponential whose time
///    constant includes the Miller-weighted coupling capacitance (factor 0
///    toward a neighbor switching the same way, 1 toward a quiet neighbor,
///    2 toward an opposite-phase neighbor) — this reproduces the Rs/Fs
///    delay push-out of the MA fault model. With `l_wire > 0` an
///    underdamped second-order response adds overshoot/ringing.
///  * a **quiet** wire stays at its rail plus the superposed
///    double-exponential crosstalk glitch injected by each switching
///    neighbor through the pair's coupling capacitor — the Pg/Ng family.
///
/// Manufacturing defects are injected by scaling a pair's coupling
/// capacitance and/or adding series resistance to a wire (resistive open /
/// weak driver), which is exactly the defect class the paper targets:
/// "process variations and manufacturing defects may lead to an unexpected
/// increase in coupling capacitances".
///
/// Internally this is a facade over three components: an immutable-between-
/// mutations `BusModel` (SoA electrical state), a `TransitionKernel`
/// (batched flat-pass solver with a scalar reference path) and a
/// `TransitionTable` (the 6*n MA vector pairs precompiled per defect
/// generation). The hot path is `transition_batch()`; `wire_response()` /
/// `transition()` are the owning scalar API with the historical memo-cache
/// semantics, byte-compatible with pre-kernel revisions.
class CoupledBus {
 public:
  explicit CoupledBus(BusParams p);

  /// Deep copy for per-shard use: electrical state, injected defects, the
  /// memoized transition cache (entries *and* hit/miss counters) and the
  /// precompiled transition table (pool *and* hit/miss counters) are
  /// carried over, so a clone of a warmed bus starts warm. The
  /// observability sink is deliberately NOT carried over — a clone lives
  /// on another worker thread, and sharing the source's sink would race;
  /// attach a thread-local sink with set_sink() after cloning. The
  /// evaluation arena is likewise per-clone (fresh and empty), so two
  /// clones never alias scratch storage.
  CoupledBus clone() const;

  const BusParams& params() const { return model_.params(); }
  std::size_t n() const { return model_.n(); }

  /// The electrical half (params + defect state as SoA arrays).
  const BusModel& model() const { return model_; }

  // ---- defect / process-variation injection -------------------------------

  /// Multiply the coupling capacitance of adjacent pair `pair` = (pair,
  /// pair+1) by `factor`. Cumulative.
  void scale_coupling(std::size_t pair, double factor);

  /// Add series resistance to `wire` (resistive open, weak driver).
  void add_series_resistance(std::size_t wire, double ohms);

  /// Composite crosstalk defect around `wire`: scales both adjacent
  /// couplings by `severity` and weakens the wire's driver proportionally.
  /// `severity` 1.0 is a no-op; ~5+ produces detectable glitches with the
  /// default detector thresholds.
  void inject_crosstalk_defect(std::size_t wire, double severity);

  /// Remove all injected defects.
  void clear_defects();

  // ---- electrical queries --------------------------------------------------

  /// Effective coupling capacitance of adjacent pair `pair` [F].
  double coupling(std::size_t pair) const { return model_.coupling(pair); }

  /// Total series resistance of `wire` including defects [Ohm].
  double resistance(std::size_t wire) const {
    return model_.resistance(wire);
  }

  /// Total capacitance seen by `wire` (ground + both couplings) [F].
  double total_cap(std::size_t wire) const { return model_.total_cap(wire); }

  /// Self time constant R*C of `wire` with current defects [s].
  double self_tau(std::size_t wire) const { return model_.self_tau(wire); }

  /// Defect-free 50% delay of `wire` — the designer's timing expectation
  /// from which the SD cell's skew-immune window is budgeted.
  sim::Time nominal_delay(std::size_t wire) const {
    return model_.nominal_delay(wire);
  }

  // ---- simulation ----------------------------------------------------------

  /// Receiving-end waveform of wire `i` for bus transition `prev -> next`
  /// (bit vectors of width n, bit k = logic level of wire k). Owning
  /// scalar API; served through the memo cache, never the tables.
  Waveform wire_response(std::size_t i, const util::BitVec& prev,
                         const util::BitVec& next) const;

  /// All wire waveforms for one bus transition (owning scalar API).
  std::vector<Waveform> transition(const util::BitVec& prev,
                                   const util::BitVec& next) const;

  /// All wire waveforms for one bus transition, zero-copy. The fast path:
  /// an MA vector pair is served straight from the precompiled table (one
  /// hash probe, no solver work, no copies); anything else is evaluated
  /// through the memo cache into the internal arena. The returned batch
  /// and every view derived from it are valid until the next
  /// transition_batch() call, defect mutation, clone or destruction of
  /// this bus.
  TransitionBatch transition_batch(const util::BitVec& prev,
                                   const util::BitVec& next) const;

  /// Logic value a receiver reads once the waveform settles (the
  /// interconnect model's receiver threshold on the final sample —
  /// vdd/2 for rc_full_swing, the level-converter Vt for low_swing).
  util::Logic settled_logic(WaveformView w) const;

  // ---- memoized transition cache ------------------------------------------
  //
  // The generic fallback for transitions outside the MA pattern set
  // (inter-pattern settling steps, custom vectors, buses wider than the
  // tables support). The key is the wire index plus the 5-bit local
  // neighbourhood [i-2, i+2] of (prev, next) — the exact electrical
  // support of wire_response: a wire's waveform depends on its own
  // transition, its neighbours' transitions (glitch injection) and
  // *their* neighbours (the aggressors' Miller time constants), and on
  // nothing farther away.
  //
  // Invalidation contract: every defect mutation (scale_coupling,
  // add_series_resistance, inject_crosstalk_defect, clear_defects) bumps
  // `defect_generation()`; cached entries belong to one generation and
  // are dropped wholesale on the first lookup after a bump. Hit/miss
  // counters survive invalidation (they meter the workload, not the
  // cache contents).
  //
  // Capacity is a bounded FIFO: when a miss lands on a full cache the
  // oldest entry is evicted to make room. (An earlier revision flushed
  // the whole cache when full, which degraded a working set of
  // kMaxCacheEntries + 1 to a 0% hit rate; only a generation bump or an
  // explicit clear flushes wholesale now.)

  /// Enable/disable memoization (enabled by default; disable to meter
  /// the raw solver).
  void set_cache_enabled(bool on);
  bool cache_enabled() const { return cache_on_; }

  std::uint64_t cache_hits() const { return cache_hits_; }
  std::uint64_t cache_misses() const { return cache_misses_; }

  /// hits / (hits + misses), 0 when nothing was looked up yet.
  double cache_hit_rate() const;

  /// Entries currently held (bounded by kMaxCacheEntries).
  std::size_t cache_entries() const { return cache_.size(); }

  /// Monotone counter of defect-state mutations; cached waveforms and
  /// precompiled tables are only ever served within one generation.
  std::uint64_t defect_generation() const {
    return model_.defect_generation();
  }

  /// Drop all cached waveforms (counters are kept). Deliberately
  /// non-const: flushing is a real state mutation, and per-shard clones
  /// must not be able to reset each other through a const reference.
  void clear_cache();

  /// Attach an observability sink. Every memoized lookup reports a
  /// CacheLookup record named "si.cache" (a=1 hit, a=0 miss, b=wire);
  /// every batched table probe reports one "si.table" CacheLookup per
  /// transition (a=1 hit, a=0 miss, b=-1). nullptr (default) disables
  /// emission; the uncached solver path never emits.
  void set_sink(obs::Sink* sink) { sink_ = sink; }

  /// Cap on resident memo entries; the oldest entry is evicted (FIFO)
  /// when a miss lands on a full cache (one entry is up to `samples`
  /// doubles, so the cap bounds memory at ~16 MB with the 2048-sample
  /// default).
  static constexpr std::size_t kMaxCacheEntries = 1024;

  // ---- precompiled MA transition tables -----------------------------------
  //
  // transition_batch() first probes the TransitionTable: the 6*n MA
  // vector pairs of this bus, solved once per defect generation — built
  // eagerly by precompile_tables() (the campaign warm-prototype path) or
  // lazily on the first batched evaluation after construction or a
  // defect mutation. Table traffic is metered separately from the memo
  // cache: table_hits()/table_misses() count whole transitions, while
  // cache_hits()/cache_misses() keep their historical per-wire memo
  // semantics untouched.

  /// Enable/disable table lookups (enabled by default; disabling drops
  /// the table and routes every batch through the memo path).
  void set_tables_enabled(bool on);
  bool tables_enabled() const { return tables_on_; }

  /// Build the MA tables for the current defect state now (idempotent
  /// per generation). The campaign runner calls this on the prototype so
  /// every per-unit clone starts with a warm table.
  void precompile_tables();

  std::uint64_t table_hits() const { return table_hits_; }
  std::uint64_t table_misses() const { return table_misses_; }

  /// hits / (hits + misses), 0 when no batch was evaluated yet.
  double table_hit_rate() const;

  /// Distinct precompiled (prev, next) pairs currently resident.
  std::size_t table_entries() const { return table_.entries(); }

 private:
  /// The raw (uncached) solver behind wire_response, on the shared
  /// kernel's scalar reference path.
  Waveform solve_wire_response(std::size_t i, const util::BitVec& prev,
                               const util::BitVec& next) const;

  void require_vector_widths(const util::BitVec& prev,
                             const util::BitVec& next) const;

  /// Memo lookup of wire i into `dst` (samples doubles), with the exact
  /// historical counter/eviction/event semantics of wire_response.
  void memo_wire_into(std::size_t i, const util::BitVec& prev,
                      const util::BitVec& next, double* dst) const;

  void emit_cache_event(const char* name, bool hit, std::int64_t b) const;

  BusModel model_;

  bool cache_on_ = true;
  mutable std::unordered_map<std::uint64_t, Waveform> cache_;
  mutable std::deque<std::uint64_t> cache_order_;  // insertion order (FIFO)
  mutable std::uint64_t cache_gen_ = 0;  // generation cache_ belongs to
  mutable std::uint64_t cache_hits_ = 0;
  mutable std::uint64_t cache_misses_ = 0;

  bool tables_on_ = true;
  mutable TransitionTable table_;
  mutable std::uint64_t table_hits_ = 0;
  mutable std::uint64_t table_misses_ = 0;

  mutable TransitionKernel kernel_;
  mutable WaveArena arena_;
  mutable std::vector<const double*> batch_ptrs_;

  obs::Sink* sink_ = nullptr;
};

/// True when `bus` is non-null and models exactly `expected` wires — the
/// "may I clone this prototype?" predicate shared by the campaign
/// runner's per-unit bus factory and the scenario builder.
bool matches_width(const CoupledBus* bus, std::size_t expected);

/// Throw std::invalid_argument unless `bus.n() == expected`. The single
/// checked width gate used by SiSocDevice and MultiBusSoc; the message
/// names the bus's interconnect model kind, e.g.
/// `low_swing bus width 16 != expected 8`.
void require_width(const CoupledBus& bus, std::size_t expected);

}  // namespace jsi::si

#endif  // JSI_SI_BUS_HPP
