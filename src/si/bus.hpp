#ifndef JSI_SI_BUS_HPP
#define JSI_SI_BUS_HPP

#include <cstddef>
#include <cstdint>
#include <deque>
#include <unordered_map>
#include <vector>

#include "obs/events.hpp"
#include "si/waveform.hpp"
#include "sim/time.hpp"
#include "util/bitvec.hpp"
#include "util/logic.hpp"

namespace jsi::si {

/// Electrical parameters of an n-wire parallel interconnect bus.
///
/// Defaults model a long 180 nm-era global interconnect: ~350 Ω total drive
/// resistance and ~300 fF per-wire load gives a ~105 ps self time constant,
/// i.e. a ~73 ps nominal 50% delay.
struct BusParams {
  std::size_t n_wires = 8;
  double vdd = 1.8;            ///< supply [V]
  double r_driver = 250.0;     ///< driver output resistance [Ohm]
  double r_wire = 100.0;       ///< distributed wire resistance (lumped) [Ohm]
  double c_ground = 200e-15;   ///< wire-to-ground capacitance [F]
  double c_couple = 50e-15;    ///< adjacent-pair coupling capacitance [F]
  double l_wire = 0.0;         ///< wire inductance [H]; >0 enables ringing
  sim::Time sample_dt = sim::kPs;  ///< waveform sample step
  std::size_t samples = 2048;      ///< waveform window (2048 ps default)
};

/// Analytic coupled-RC(+L) model of the bus between two cores.
///
/// For each bus transition `prev -> next` the model produces the receiving-
/// end voltage waveform of every wire:
///
///  * a **switching** wire follows a single-pole exponential whose time
///    constant includes the Miller-weighted coupling capacitance (factor 0
///    toward a neighbor switching the same way, 1 toward a quiet neighbor,
///    2 toward an opposite-phase neighbor) — this reproduces the Rs/Fs
///    delay push-out of the MA fault model. With `l_wire > 0` an
///    underdamped second-order response adds overshoot/ringing.
///  * a **quiet** wire stays at its rail plus the superposed
///    double-exponential crosstalk glitch injected by each switching
///    neighbor through the pair's coupling capacitor — the Pg/Ng family.
///
/// Manufacturing defects are injected by scaling a pair's coupling
/// capacitance and/or adding series resistance to a wire (resistive open /
/// weak driver), which is exactly the defect class the paper targets:
/// "process variations and manufacturing defects may lead to an unexpected
/// increase in coupling capacitances".
class CoupledBus {
 public:
  explicit CoupledBus(BusParams p);

  /// Deep copy for per-shard use: electrical state, injected defects and
  /// the memoized transition cache (entries *and* hit/miss counters) are
  /// carried over, so a clone of a warmed bus starts warm. The
  /// observability sink is deliberately NOT carried over — a clone lives
  /// on another worker thread, and sharing the source's sink would race;
  /// attach a thread-local sink with set_sink() after cloning.
  CoupledBus clone() const;

  const BusParams& params() const { return p_; }
  std::size_t n() const { return p_.n_wires; }

  // ---- defect / process-variation injection -------------------------------

  /// Multiply the coupling capacitance of adjacent pair `pair` = (pair,
  /// pair+1) by `factor`. Cumulative.
  void scale_coupling(std::size_t pair, double factor);

  /// Add series resistance to `wire` (resistive open, weak driver).
  void add_series_resistance(std::size_t wire, double ohms);

  /// Composite crosstalk defect around `wire`: scales both adjacent
  /// couplings by `severity` and weakens the wire's driver proportionally.
  /// `severity` 1.0 is a no-op; ~5+ produces detectable glitches with the
  /// default detector thresholds.
  void inject_crosstalk_defect(std::size_t wire, double severity);

  /// Remove all injected defects.
  void clear_defects();

  // ---- electrical queries --------------------------------------------------

  /// Effective coupling capacitance of adjacent pair `pair` [F].
  double coupling(std::size_t pair) const;

  /// Total series resistance of `wire` including defects [Ohm].
  double resistance(std::size_t wire) const;

  /// Total capacitance seen by `wire` (ground + both couplings) [F].
  double total_cap(std::size_t wire) const;

  /// Self time constant R*C of `wire` with current defects [s].
  double self_tau(std::size_t wire) const;

  /// Defect-free 50% delay of `wire` — the designer's timing expectation
  /// from which the SD cell's skew-immune window is budgeted.
  sim::Time nominal_delay(std::size_t wire) const;

  // ---- simulation ----------------------------------------------------------

  /// Receiving-end waveform of wire `i` for bus transition `prev -> next`
  /// (bit vectors of width n, bit k = logic level of wire k).
  Waveform wire_response(std::size_t i, const util::BitVec& prev,
                         const util::BitVec& next) const;

  /// All wire waveforms for one bus transition.
  std::vector<Waveform> transition(const util::BitVec& prev,
                                   const util::BitVec& next) const;

  /// Logic value a receiver reads once the waveform settles (vdd/2
  /// threshold on the final sample).
  util::Logic settled_logic(const Waveform& w) const;

  // ---- memoized transition cache ------------------------------------------
  //
  // The MA pattern set re-applies identical prev->next bus transitions
  // O(n) times per session (every victim sees the same aggressor-toggle
  // neighbourhoods), so per-wire waveforms are memoized. The key is the
  // wire index plus the 5-bit local neighbourhood [i-2, i+2] of (prev,
  // next) — the exact electrical support of wire_response: a wire's
  // waveform depends on its own transition, its neighbours' transitions
  // (glitch injection) and *their* neighbours (the aggressors' Miller
  // time constants), and on nothing farther away.
  //
  // Invalidation contract: every defect mutation (scale_coupling,
  // add_series_resistance, inject_crosstalk_defect, clear_defects) bumps
  // `defect_generation()`; cached entries belong to one generation and
  // are dropped wholesale on the first lookup after a bump. Hit/miss
  // counters survive invalidation (they meter the workload, not the
  // cache contents).
  //
  // Capacity is a bounded FIFO: when a miss lands on a full cache the
  // oldest entry is evicted to make room. (An earlier revision flushed
  // the whole cache when full, which degraded a working set of
  // kMaxCacheEntries + 1 to a 0% hit rate; only a generation bump or an
  // explicit clear flushes wholesale now.)

  /// Enable/disable memoization (enabled by default; disable to meter
  /// the raw solver).
  void set_cache_enabled(bool on);
  bool cache_enabled() const { return cache_on_; }

  std::uint64_t cache_hits() const { return cache_hits_; }
  std::uint64_t cache_misses() const { return cache_misses_; }

  /// hits / (hits + misses), 0 when nothing was looked up yet.
  double cache_hit_rate() const;

  /// Entries currently held (bounded by kMaxCacheEntries).
  std::size_t cache_entries() const { return cache_.size(); }

  /// Monotone counter of defect-state mutations; cached waveforms are
  /// only ever served within one generation.
  std::uint64_t defect_generation() const { return defect_gen_; }

  /// Drop all cached waveforms (counters are kept). Deliberately
  /// non-const: flushing is a real state mutation, and per-shard clones
  /// must not be able to reset each other through a const reference.
  void clear_cache();

  /// Attach an observability sink; every memoized lookup reports a
  /// CacheLookup record (a=1 hit, a=0 miss). nullptr (default) disables
  /// emission; the uncached solver path never emits.
  void set_sink(obs::Sink* sink) { sink_ = sink; }

  /// Cap on resident entries; the oldest entry is evicted (FIFO) when a
  /// miss lands on a full cache (one entry is up to `samples` doubles, so
  /// the cap bounds memory at ~16 MB with the 2048-sample default).
  static constexpr std::size_t kMaxCacheEntries = 1024;

 private:
  int delta(const util::BitVec& prev, const util::BitVec& next,
            std::size_t i) const;
  double miller_cap(std::size_t i, const util::BitVec& prev,
                    const util::BitVec& next) const;
  Waveform switching_response(std::size_t i, double v0, double vf,
                              double tau) const;
  void add_glitch(Waveform& w, double cc, double ctot_v, double tau_v,
                  double tau_a, int direction) const;

  /// The raw (uncached) solver behind wire_response.
  Waveform solve_wire_response(std::size_t i, const util::BitVec& prev,
                               const util::BitVec& next) const;

  /// Cache key: wire index | prev[i-2..i+2] | next[i-2..i+2] (out-of-range
  /// neighbour positions encode as 0, which the solver ignores).
  std::uint64_t cache_key(std::size_t i, const util::BitVec& prev,
                          const util::BitVec& next) const;

  BusParams p_;
  std::vector<double> couple_;   // per adjacent pair, with defects
  std::vector<double> extra_r_;  // per wire, defect series resistance

  std::uint64_t defect_gen_ = 0;
  bool cache_on_ = true;
  mutable std::unordered_map<std::uint64_t, Waveform> cache_;
  mutable std::deque<std::uint64_t> cache_order_;  // insertion order (FIFO)
  mutable std::uint64_t cache_gen_ = 0;  // generation cache_ belongs to
  mutable std::uint64_t cache_hits_ = 0;
  mutable std::uint64_t cache_misses_ = 0;
  obs::Sink* sink_ = nullptr;
};

/// True when `bus` is non-null and models exactly `expected` wires — the
/// "may I clone this prototype?" predicate shared by the campaign
/// runner's per-unit bus factory and the scenario builder.
bool matches_width(const CoupledBus* bus, std::size_t expected);

/// Throw std::invalid_argument(message) unless `bus.n() == expected`.
/// The single checked width gate used by SiSocDevice, MultiBusSoc and
/// the scenario builder (each passes its own established message text).
void require_width(const CoupledBus& bus, std::size_t expected,
                   const char* message);

}  // namespace jsi::si

#endif  // JSI_SI_BUS_HPP
