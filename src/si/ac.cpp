#include "si/ac.hpp"

namespace jsi::si {

Waveform ac_couple(const Waveform& w, const AcCouplingParams& p) {
  Waveform out(w.samples(), w.dt(), p.bias);
  if (w.samples() == 0) return out;
  const double dt = static_cast<double>(w.dt()) * 1e-12;
  const double a = p.tau / (p.tau + dt);
  // y[i] = a * (y[i-1] + x[i] - x[i-1]); capacitor initially settled, so
  // the DC level of x at t=0 is fully blocked.
  double y = 0.0;
  out[0] = p.bias;
  for (std::size_t i = 1; i < w.samples(); ++i) {
    y = a * (y + w[i] - w[i - 1]);
    out[i] = p.bias + y;
  }
  return out;
}

bool AcTestReceiver::sees_activity(const Waveform& w) const {
  const Waveform post = ac_couple(w, channel_);
  return post.max_value() >= channel_.bias + threshold_ ||
         post.min_value() <= channel_.bias - threshold_;
}

}  // namespace jsi::si
