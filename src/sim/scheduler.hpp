#ifndef JSI_SIM_SCHEDULER_HPP
#define JSI_SIM_SCHEDULER_HPP

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "obs/events.hpp"
#include "sim/time.hpp"

namespace jsi::sim {

/// Discrete-event scheduler.
///
/// Events are callbacks ordered by (time, insertion sequence): two events
/// scheduled for the same instant fire in the order they were scheduled,
/// which makes gate-delay simulations deterministic without delta-cycle
/// bookkeeping at the call sites.
class Scheduler {
 public:
  using Callback = std::function<void()>;

  /// Current simulation time. Starts at 0.
  Time now() const { return now_; }

  /// Schedule `cb` to run `delay` picoseconds from `now()`.
  void schedule(Time delay, Callback cb) { schedule_at(now_ + delay, std::move(cb)); }

  /// Schedule `cb` at absolute time `at`. `at` may equal `now()` (a delta
  /// event) but must not be in the past; a past time is clamped to now.
  void schedule_at(Time at, Callback cb);

  /// Run events until the queue drains or simulated time would exceed
  /// `horizon`. Returns the number of events executed. Events scheduled at
  /// exactly `horizon` still run.
  std::size_t run_until(Time horizon);

  /// Run until the queue is completely empty. Returns events executed.
  std::size_t run_all();

  /// Number of pending events.
  std::size_t pending() const { return queue_.size(); }

  /// Total events executed since construction (perf counter).
  std::uint64_t executed() const { return executed_; }

  /// Drop every pending event and reset time to 0.
  void reset();

  /// Attach an observability sink; each run_until/run_all call that
  /// executes at least one event reports a SchedulerRun record carrying
  /// the batch size. nullptr (default) disables emission.
  void set_sink(obs::Sink* sink) { sink_ = sink; }

 private:
  void report_run(std::size_t n);

  struct Entry {
    Time at;
    std::uint64_t seq;
    Callback cb;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  Time now_ = 0;
  std::uint64_t seq_ = 0;
  std::uint64_t executed_ = 0;
  obs::Sink* sink_ = nullptr;
  std::priority_queue<Entry, std::vector<Entry>, Later> queue_;
};

}  // namespace jsi::sim

#endif  // JSI_SIM_SCHEDULER_HPP
