#include "sim/scheduler.hpp"

#include <utility>

namespace jsi::sim {

void Scheduler::schedule_at(Time at, Callback cb) {
  if (at < now_) at = now_;
  queue_.push(Entry{at, seq_++, std::move(cb)});
}

std::size_t Scheduler::run_until(Time horizon) {
  std::size_t n = 0;
  while (!queue_.empty() && queue_.top().at <= horizon) {
    // Copy out before pop so the callback may schedule new events.
    Entry e = std::move(const_cast<Entry&>(queue_.top()));
    queue_.pop();
    now_ = e.at;
    e.cb();
    ++n;
    ++executed_;
  }
  if (now_ < horizon) now_ = horizon;
  report_run(n);
  return n;
}

std::size_t Scheduler::run_all() {
  std::size_t n = 0;
  while (!queue_.empty()) {
    Entry e = std::move(const_cast<Entry&>(queue_.top()));
    queue_.pop();
    now_ = e.at;
    e.cb();
    ++n;
    ++executed_;
  }
  report_run(n);
  return n;
}

void Scheduler::report_run(std::size_t n) {
  if (!sink_ || n == 0) return;
  obs::Event e;
  e.kind = obs::EventKind::SchedulerRun;
  e.name = "sim.run";
  e.value = n;
  sink_->on_event(e);
}

void Scheduler::reset() {
  queue_ = {};
  now_ = 0;
}

}  // namespace jsi::sim
