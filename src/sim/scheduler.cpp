#include "sim/scheduler.hpp"

#include <utility>

namespace jsi::sim {

void Scheduler::schedule_at(Time at, Callback cb) {
  if (at < now_) at = now_;
  queue_.push(Entry{at, seq_++, std::move(cb)});
}

std::size_t Scheduler::run_until(Time horizon) {
  std::size_t n = 0;
  while (!queue_.empty() && queue_.top().at <= horizon) {
    // Copy out before pop so the callback may schedule new events.
    Entry e = std::move(const_cast<Entry&>(queue_.top()));
    queue_.pop();
    now_ = e.at;
    e.cb();
    ++n;
    ++executed_;
  }
  if (now_ < horizon) now_ = horizon;
  return n;
}

std::size_t Scheduler::run_all() {
  std::size_t n = 0;
  while (!queue_.empty()) {
    Entry e = std::move(const_cast<Entry&>(queue_.top()));
    queue_.pop();
    now_ = e.at;
    e.cb();
    ++n;
    ++executed_;
  }
  return n;
}

void Scheduler::reset() {
  queue_ = {};
  now_ = 0;
}

}  // namespace jsi::sim
