#ifndef JSI_SIM_SIGNAL_HPP
#define JSI_SIM_SIGNAL_HPP

#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "sim/scheduler.hpp"
#include "sim/time.hpp"
#include "util/logic.hpp"

namespace jsi::sim {

/// A named, traced digital signal living inside a `Scheduler` timeline.
///
/// `set()` schedules the new value after a transport delay; observers
/// registered with `on_change` fire when the value actually changes.
/// Later-scheduled writes override earlier ones that land at the same or a
/// later time only in arrival order (transport semantics, no inertial
/// cancellation) — adequate for the clocked structures modeled here.
class DSignal {
 public:
  using Observer = std::function<void(util::Logic old_v, util::Logic new_v, Time at)>;

  DSignal(Scheduler& sched, std::string name,
          util::Logic initial = util::Logic::X)
      : sched_(&sched), name_(std::move(name)), value_(initial) {}

  const std::string& name() const { return name_; }
  util::Logic value() const { return value_; }

  /// Schedule `v` to appear on the signal `delay` after the current time.
  void set(util::Logic v, Time delay = 0) {
    sched_->schedule(delay, [this, v] { apply(v); });
  }

  /// Immediately force the value (initialization / test setup).
  void force(util::Logic v) { apply(v); }

  /// Register an observer invoked on every value change.
  void on_change(Observer obs) { observers_.push_back(std::move(obs)); }

  /// Register an observer invoked only on a rising edge (0/X -> 1).
  void on_rise(std::function<void(Time)> f) {
    on_change([f = std::move(f)](util::Logic, util::Logic nv, Time at) {
      if (nv == util::Logic::L1) f(at);
    });
  }

  /// Number of value changes applied so far (toggle counter).
  std::uint64_t toggles() const { return toggles_; }

 private:
  void apply(util::Logic v) {
    if (v == value_) return;
    const util::Logic old = value_;
    value_ = v;
    ++toggles_;
    for (auto& obs : observers_) obs(old, v, sched_->now());
  }

  Scheduler* sched_;
  std::string name_;
  util::Logic value_;
  std::uint64_t toggles_ = 0;
  std::vector<Observer> observers_;
};

}  // namespace jsi::sim

#endif  // JSI_SIM_SIGNAL_HPP
