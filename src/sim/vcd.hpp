#ifndef JSI_SIM_VCD_HPP
#define JSI_SIM_VCD_HPP

#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include "sim/time.hpp"
#include "util/logic.hpp"

namespace jsi::sim {

/// Value-Change-Dump (IEEE 1364 §18) writer so any session or cell model
/// can be inspected in GTKWave. Timescale is fixed at 1 ps to match
/// `sim::Time`.
///
/// Usage:
///   VcdWriter vcd("trace.vcd");
///   auto tck = vcd.add_signal("tap.tck");
///   vcd.begin();                       // emits header
///   vcd.change(tck, Logic::L0, 0);
///   vcd.change(tck, Logic::L1, 500);
///   ...                                // flushed/closed by destructor
class VcdWriter {
 public:
  /// Opaque handle for a declared signal.
  using Id = std::size_t;

  /// Open `path` for writing; throws std::runtime_error on failure.
  explicit VcdWriter(const std::string& path);
  ~VcdWriter();

  VcdWriter(const VcdWriter&) = delete;
  VcdWriter& operator=(const VcdWriter&) = delete;

  /// Declare a scalar signal. Dots in `name` become scope separators
  /// ("tap.tck" -> module tap, wire tck). Must be called before `begin()`.
  Id add_signal(const std::string& name);

  /// Emit the VCD header; call after all signals are declared.
  void begin();

  /// Record `v` on signal `id` at absolute time `at` (ps). Times must be
  /// non-decreasing across calls.
  void change(Id id, util::Logic v, Time at);

  /// Advance the timestamp without a value change (marks end of trace).
  void timestamp(Time at);

  /// Number of change records written (test hook).
  std::uint64_t changes_written() const { return changes_; }

 private:
  struct Sig {
    std::string name;
    std::string code;
    util::Logic last = util::Logic::X;
  };
  void emit_time(Time at);
  static std::string code_for(std::size_t index);

  std::ofstream os_;
  std::vector<Sig> sigs_;
  bool started_ = false;
  bool have_time_ = false;
  Time last_time_ = 0;
  std::uint64_t changes_ = 0;
};

}  // namespace jsi::sim

#endif  // JSI_SIM_VCD_HPP
