#ifndef JSI_SIM_TIME_HPP
#define JSI_SIM_TIME_HPP

#include <cstdint>

namespace jsi::sim {

/// Simulation time in picoseconds. 64 bits of picoseconds covers ~213 days
/// of simulated time — far beyond any test session here.
using Time = std::uint64_t;

/// Convenience constructors so call sites read `5 * kNs` instead of raw
/// picosecond literals.
inline constexpr Time kPs = 1;
inline constexpr Time kNs = 1000 * kPs;
inline constexpr Time kUs = 1000 * kNs;
inline constexpr Time kMs = 1000 * kUs;

/// Convert picoseconds to (double) nanoseconds for reporting.
inline constexpr double to_ns(Time t) { return static_cast<double>(t) / 1e3; }

/// Convert (double) nanoseconds to picoseconds, rounding to nearest.
inline constexpr Time from_ns(double ns) {
  return static_cast<Time>(ns * 1e3 + 0.5);
}

}  // namespace jsi::sim

#endif  // JSI_SIM_TIME_HPP
