#include "sim/vcd.hpp"

#include <map>
#include <stdexcept>

namespace jsi::sim {

VcdWriter::VcdWriter(const std::string& path) : os_(path) {
  if (!os_) throw std::runtime_error("VcdWriter: cannot open " + path);
}

VcdWriter::~VcdWriter() {
  if (started_ && have_time_) {
    // Final timestamp already emitted; nothing else required by the format.
  }
}

std::string VcdWriter::code_for(std::size_t index) {
  // Printable identifier characters per the VCD grammar: '!' (33) .. '~' (126).
  std::string code;
  std::size_t n = index;
  do {
    code.push_back(static_cast<char>('!' + n % 94));
    n /= 94;
  } while (n != 0);
  return code;
}

VcdWriter::Id VcdWriter::add_signal(const std::string& name) {
  if (started_) throw std::logic_error("VcdWriter: add_signal after begin");
  sigs_.push_back(Sig{name, code_for(sigs_.size()), util::Logic::X});
  return sigs_.size() - 1;
}

void VcdWriter::begin() {
  if (started_) return;
  started_ = true;
  os_ << "$date jsi trace $end\n"
      << "$version jsi VcdWriter $end\n"
      << "$timescale 1ps $end\n";

  // Group signals by their scope prefix (everything before the last dot).
  std::map<std::string, std::vector<std::size_t>> scopes;
  for (std::size_t i = 0; i < sigs_.size(); ++i) {
    const auto& name = sigs_[i].name;
    const auto dot = name.rfind('.');
    scopes[dot == std::string::npos ? "" : name.substr(0, dot)].push_back(i);
  }
  for (const auto& [scope, ids] : scopes) {
    if (!scope.empty()) os_ << "$scope module " << scope << " $end\n";
    for (auto i : ids) {
      const auto& name = sigs_[i].name;
      const auto dot = name.rfind('.');
      const std::string leaf =
          dot == std::string::npos ? name : name.substr(dot + 1);
      os_ << "$var wire 1 " << sigs_[i].code << ' ' << leaf << " $end\n";
    }
    if (!scope.empty()) os_ << "$upscope $end\n";
  }
  os_ << "$enddefinitions $end\n$dumpvars\n";
  for (const auto& s : sigs_) os_ << 'x' << s.code << '\n';
  os_ << "$end\n";
}

void VcdWriter::emit_time(Time at) {
  if (!have_time_ || at != last_time_) {
    os_ << '#' << at << '\n';
    last_time_ = at;
    have_time_ = true;
  }
}

void VcdWriter::change(Id id, util::Logic v, Time at) {
  if (!started_) throw std::logic_error("VcdWriter: change before begin");
  if (id >= sigs_.size()) throw std::out_of_range("VcdWriter: bad signal id");
  if (have_time_ && at < last_time_) {
    throw std::logic_error("VcdWriter: time went backwards");
  }
  if (sigs_[id].last == v && have_time_) return;
  emit_time(at);
  char c = util::to_char(v);
  if (c == 'X') c = 'x';
  if (c == 'Z') c = 'z';
  os_ << c << sigs_[id].code << '\n';
  sigs_[id].last = v;
  ++changes_;
}

void VcdWriter::timestamp(Time at) {
  if (!started_) throw std::logic_error("VcdWriter: timestamp before begin");
  emit_time(at);
}

}  // namespace jsi::sim
